//! Property tests for the delta evaluator: after an arbitrary sequence of
//! random single-offer moves (with arbitrary interleaved reverts), the
//! running total must equal the reference `cost::evaluate()` recomputed
//! from scratch, within 1e-6 — and a `rebase()` onto a perturbed
//! baseline must be indistinguishable from a fresh `resync()` against
//! the updated problem.

use mirabel_schedule::cost::evaluate;
use mirabel_schedule::solution::Placement;
use mirabel_schedule::{scenario, DeltaEvaluator, ScenarioConfig, Solution};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #[test]
    fn running_total_matches_full_reevaluation(
        scenario_seed in 0u64..500,
        offer_count in 1usize..14,
        move_seed in 0u64..500,
        moves in 1usize..80,
        revert_bits in proptest::collection::vec(any::<bool>(), 80),
    ) {
        let problem = scenario(ScenarioConfig {
            offer_count,
            seed: scenario_seed,
            ..ScenarioConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(move_seed);
        let start = Solution::random(&problem, &mut rng);
        let mut eval = DeltaEvaluator::new(&problem, start);

        for (m, &revert) in revert_bits.iter().enumerate().take(moves) {
            let j = rng.gen_range(0..problem.offers.len());
            let placement = Placement::random(&problem.offers[j], &mut rng);
            eval.apply_move(j, placement);
            if revert {
                eval.revert();
            }
            let reference = evaluate(&problem, eval.solution()).total();
            prop_assert!(
                (eval.total() - reference).abs() < 1e-6,
                "after move {m}: delta total {} vs full {reference}",
                eval.total()
            );
        }
    }

    #[test]
    fn propose_repair_path_matches_full_reevaluation(
        scenario_seed in 0u64..500,
        offer_count in 1usize..10,
        move_seed in 0u64..500,
        moves in 1usize..60,
    ) {
        let problem = scenario(ScenarioConfig {
            offer_count,
            seed: scenario_seed,
            ..ScenarioConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(move_seed);
        let mut eval = DeltaEvaluator::new(&problem, Solution::baseline(&problem));

        for m in 0..moves {
            let j = rng.gen_range(0..problem.offers.len());
            let f_cand = eval.propose(j, |g, offer| {
                if offer.time_flexibility() > 0 && rng.gen_bool(0.5) {
                    let span = (offer.time_flexibility() / 2).max(1) as i64;
                    g.start = mirabel_core::TimeSlot(g.start.index() + rng.gen_range(-span..=span));
                }
                for f in &mut g.fractions {
                    *f += rng.gen_range(-0.4..0.4);
                }
                g.repair(offer);
            });
            let reference = evaluate(&problem, eval.solution()).total();
            prop_assert!(
                (f_cand - reference).abs() < 1e-6,
                "after propose {m}: delta total {f_cand} vs full {reference}"
            );
        }
    }

    /// Rebase correctness: for random slot subsets and random move
    /// sequences, `rebase(changed_slots)` followed by evaluation equals
    /// a fresh `resync()` (i.e. a freshly built evaluator) on the
    /// updated baseline — and subsequent moves stay in sync too.
    #[test]
    fn rebase_equals_fresh_resync_on_updated_baseline(
        scenario_seed in 0u64..500,
        offer_count in 1usize..12,
        move_seed in 0u64..500,
        pre_moves in 0usize..30,
        post_moves in 0usize..30,
        slot_bits in proptest::collection::vec(any::<bool>(), 96),
    ) {
        let problem = scenario(ScenarioConfig {
            offer_count,
            seed: scenario_seed,
            ..ScenarioConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(move_seed);
        let mut eval =
            DeltaEvaluator::new_owned(problem.clone(), Solution::random(&problem, &mut rng));

        // Arbitrary optimization history before the forecast update.
        for _ in 0..pre_moves {
            let j = rng.gen_range(0..problem.offers.len());
            eval.apply_move(j, Placement::random(&problem.offers[j], &mut rng));
        }

        // Random changed-slot subset, random perturbation on each.
        let changed: Vec<usize> = slot_bits
            .iter()
            .take(problem.horizon())
            .enumerate()
            .filter(|(_, &bit)| bit)
            .map(|(i, _)| i)
            .collect();
        let mut new_baseline = problem.baseline_imbalance.clone();
        for &t in &changed {
            new_baseline[t] += rng.gen_range(-3.0..3.0);
        }

        let rebased_total = eval.rebase(&new_baseline, &changed);

        // Reference: a brand-new evaluator (one full resync) over the
        // updated problem and the same solution.
        let mut updated = problem.clone();
        updated.baseline_imbalance = new_baseline;
        let fresh = DeltaEvaluator::new(&updated, eval.solution().clone());
        prop_assert!(
            (rebased_total - fresh.total()).abs() < 1e-6,
            "rebase {rebased_total} vs fresh resync {}",
            fresh.total()
        );

        // Moves after the rebase must track the full evaluation of the
        // updated problem.
        for m in 0..post_moves {
            let j = rng.gen_range(0..updated.offers.len());
            let total = eval.apply_move(j, Placement::random(&updated.offers[j], &mut rng));
            let reference = evaluate(&updated, eval.solution()).total();
            prop_assert!(
                (total - reference).abs() < 1e-6,
                "after post-rebase move {m}: delta {total} vs full {reference}"
            );
        }
    }
}
