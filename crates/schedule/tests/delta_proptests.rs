//! Property tests for the delta evaluator: after an arbitrary sequence of
//! random single-offer moves (with arbitrary interleaved reverts), the
//! running total must equal the reference `cost::evaluate()` recomputed
//! from scratch, within 1e-6.

use mirabel_schedule::cost::evaluate;
use mirabel_schedule::solution::Placement;
use mirabel_schedule::{scenario, DeltaEvaluator, ScenarioConfig, Solution};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #[test]
    fn running_total_matches_full_reevaluation(
        scenario_seed in 0u64..500,
        offer_count in 1usize..14,
        move_seed in 0u64..500,
        moves in 1usize..80,
        revert_bits in proptest::collection::vec(any::<bool>(), 80),
    ) {
        let problem = scenario(ScenarioConfig {
            offer_count,
            seed: scenario_seed,
            ..ScenarioConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(move_seed);
        let start = Solution::random(&problem, &mut rng);
        let mut eval = DeltaEvaluator::new(&problem, start);

        for (m, &revert) in revert_bits.iter().enumerate().take(moves) {
            let j = rng.gen_range(0..problem.offers.len());
            let placement = Placement::random(&problem.offers[j], &mut rng);
            eval.apply_move(j, placement);
            if revert {
                eval.revert();
            }
            let reference = evaluate(&problem, eval.solution()).total();
            prop_assert!(
                (eval.total() - reference).abs() < 1e-6,
                "after move {m}: delta total {} vs full {reference}",
                eval.total()
            );
        }
    }

    #[test]
    fn propose_repair_path_matches_full_reevaluation(
        scenario_seed in 0u64..500,
        offer_count in 1usize..10,
        move_seed in 0u64..500,
        moves in 1usize..60,
    ) {
        let problem = scenario(ScenarioConfig {
            offer_count,
            seed: scenario_seed,
            ..ScenarioConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(move_seed);
        let mut eval = DeltaEvaluator::new(&problem, Solution::baseline(&problem));

        for m in 0..moves {
            let j = rng.gen_range(0..problem.offers.len());
            let f_cand = eval.propose(j, |g, offer| {
                if offer.time_flexibility() > 0 && rng.gen_bool(0.5) {
                    let span = (offer.time_flexibility() / 2).max(1) as i64;
                    g.start = mirabel_core::TimeSlot(g.start.index() + rng.gen_range(-span..=span));
                }
                for f in &mut g.fractions {
                    *f += rng.gen_range(-0.4..0.4);
                }
                g.repair(offer);
            });
            let reference = evaluate(&problem, eval.solution()).total();
            prop_assert!(
                (f_cand - reference).abs() < 1e-6,
                "after propose {m}: delta total {f_cand} vs full {reference}"
            );
        }
    }
}
