//! Randomized greedy search (paper §6).
//!
//! "The randomized greedy search constructs the schedule gradually — at
//! each step a randomly chosen flex-offer is scheduled in the best
//! possible position. This is repeated until all flex-offers have been
//! scheduled. While it is possible to schedule a single flex-offer in an
//! optimal way, a sequence of such optimal placements does not produce an
//! overall optimal schedule."
//!
//! Under a longer budget the construction is *restarted* with fresh random
//! orders, keeping the best complete schedule — which yields the
//! cost-over-time curves of Figure 6.

use crate::cost::{evaluate, slot_cost};
use crate::problem::SchedulingProblem;
use crate::solution::{Budget, Placement, Recorder, ScheduleResult, Solution};
use mirabel_core::OfferKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Randomized greedy scheduler with restarts.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyScheduler;

impl GreedyScheduler {
    /// Construct one greedy schedule using `rng`'s offer order.
    /// `recorder` accounts one evaluation per candidate start examined.
    fn construct(
        &self,
        problem: &SchedulingProblem,
        rng: &mut StdRng,
        recorder: &mut Recorder,
    ) -> Solution {
        let n = problem.offers.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);

        let mut residual = problem.baseline_imbalance.clone();
        let mut placements: Vec<Option<Placement>> = vec![None; n];

        for &j in &order {
            let offer = &problem.offers[j];
            let sign = match offer.kind() {
                OfferKind::Consumption => 1.0,
                OfferKind::Production => -1.0,
            };
            let ranges: Vec<_> = offer.profile().slot_ranges().collect();
            let price = offer.unit_price().eur();

            let mut best: Option<(f64, u32, Vec<f64>)> = None;
            for shift in 0..=offer.time_flexibility() {
                let base = problem.slot_index(offer.earliest_start() + shift);
                let mut delta = 0.0;
                let mut fractions = Vec::with_capacity(ranges.len());
                for (k, r) in ranges.iter().enumerate() {
                    let t = base + k;
                    let cur = residual[t];
                    // Water-fill: drive the slot residual toward zero
                    // within the slot's energy range.
                    let target = -sign * cur;
                    let e = target.clamp(r.min().kwh(), r.max().kwh());
                    let width = (r.max() - r.min()).kwh();
                    fractions.push(if width > 0.0 {
                        (e - r.min().kwh()) / width
                    } else {
                        0.0
                    });
                    let pen = problem.imbalance_penalty[t];
                    let buy = problem.prices.buy[t];
                    let sell = problem.prices.sell[t];
                    let cap = problem.prices.max_trade_per_slot;
                    delta += slot_cost(cur + sign * e, pen, buy, sell, cap)
                        - slot_cost(cur, pen, buy, sell, cap)
                        + price * e;
                }
                recorder.tick();
                if best.as_ref().is_none_or(|(c, _, _)| delta < *c) {
                    best = Some((delta, shift, fractions));
                }
                if recorder.exhausted() {
                    break;
                }
            }

            let (_, shift, fractions) = best.expect("at least one start evaluated");
            let start = offer.earliest_start() + shift;
            let base = problem.slot_index(start);
            for (k, (r, &f)) in ranges.iter().zip(&fractions).enumerate() {
                residual[base + k] += sign * r.lerp(f).kwh();
            }
            placements[j] = Some(Placement { start, fractions });
            if recorder.exhausted() {
                // Fill the rest at baseline so the solution is complete.
                for (p, o) in placements.iter_mut().zip(&problem.offers) {
                    if p.is_none() {
                        *p = Some(Placement::baseline(o));
                    }
                }
                break;
            }
        }

        Solution {
            placements: placements
                .into_iter()
                .map(|p| p.expect("all offers placed"))
                .collect(),
        }
    }

    /// Run greedy constructions until the budget is exhausted; keep the
    /// best.
    pub fn run(&self, problem: &SchedulingProblem, budget: Budget, seed: u64) -> ScheduleResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut recorder = Recorder::new(budget);
        let mut best: Option<(Solution, f64)> = None;
        loop {
            let candidate = self.construct(problem, &mut rng, &mut recorder);
            let cost = evaluate(problem, &candidate);
            recorder.record(cost.total());
            if best.as_ref().is_none_or(|(_, c)| cost.total() < *c) {
                best = Some((candidate, cost.total()));
            }
            if recorder.exhausted() {
                break;
            }
        }
        let (solution, _) = best.expect("at least one construction");
        let cost = evaluate(problem, &solution);
        recorder.finish(solution, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MarketPrices;
    use crate::scenario::{scenario, ScenarioConfig};
    use mirabel_core::{EnergyRange, FlexOffer, Profile, TimeSlot};

    #[test]
    fn places_single_offer_optimally() {
        // Surplus at slots 4..6; one shiftable 2-slot consumer.
        let offer = FlexOffer::builder(0, 1)
            .earliest_start(TimeSlot(0))
            .time_flexibility(6)
            .profile(Profile::uniform(2, EnergyRange::fixed(3.0)))
            .build()
            .unwrap();
        let mut imbalance = vec![0.0; 8];
        imbalance[4] = -3.0;
        imbalance[5] = -3.0;
        let p = SchedulingProblem::new(
            TimeSlot(0),
            imbalance,
            vec![offer],
            MarketPrices::flat(8, 1.0, 0.0, 0.0),
            vec![0.2; 8],
        )
        .unwrap();
        let r = GreedyScheduler.run(&p, Budget::evaluations(1000), 1);
        assert_eq!(r.solution.placements[0].start, TimeSlot(4));
        assert!(r.cost.total().abs() < 1e-9);
        assert!(r.solution.is_feasible(&p));
    }

    #[test]
    fn beats_baseline_on_generated_scenario() {
        let p = scenario(ScenarioConfig {
            offer_count: 50,
            seed: 3,
            ..ScenarioConfig::default()
        });
        let baseline_cost = evaluate(&p, &Solution::baseline(&p)).total();
        let r = GreedyScheduler.run(&p, Budget::evaluations(20_000), 1);
        assert!(
            r.cost.total() < baseline_cost,
            "greedy {} vs baseline {}",
            r.cost.total(),
            baseline_cost
        );
        assert!(r.solution.is_feasible(&p));
    }

    #[test]
    fn trajectory_improves_with_restarts() {
        let p = scenario(ScenarioConfig {
            offer_count: 20,
            seed: 5,
            ..ScenarioConfig::default()
        });
        let r = GreedyScheduler.run(&p, Budget::evaluations(50_000), 2);
        assert!(!r.trajectory.is_empty());
        for w in r.trajectory.windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = scenario(ScenarioConfig {
            offer_count: 10,
            seed: 7,
            ..ScenarioConfig::default()
        });
        let a = GreedyScheduler.run(&p, Budget::evaluations(5_000), 9);
        let b = GreedyScheduler.run(&p, Budget::evaluations(5_000), 9);
        assert_eq!(a.solution, b.solution);
    }

    #[test]
    fn tight_budget_still_returns_complete_solution() {
        let p = scenario(ScenarioConfig {
            offer_count: 30,
            seed: 11,
            ..ScenarioConfig::default()
        });
        let r = GreedyScheduler.run(&p, Budget::evaluations(10), 1);
        assert_eq!(r.solution.placements.len(), 30);
        assert!(r.solution.is_feasible(&p));
    }
}
