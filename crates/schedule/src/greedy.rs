//! Randomized greedy search (paper §6).
//!
//! "The randomized greedy search constructs the schedule gradually — at
//! each step a randomly chosen flex-offer is scheduled in the best
//! possible position. This is repeated until all flex-offers have been
//! scheduled. While it is possible to schedule a single flex-offer in an
//! optimal way, a sequence of such optimal placements does not produce an
//! overall optimal schedule."
//!
//! Under a longer budget the construction is *restarted* with fresh random
//! orders, keeping the best complete schedule — which yields the
//! cost-over-time curves of Figure 6. Each construction is followed by a
//! short delta-scored polish (single-offer hill climb through the
//! [`DeltaEvaluator`]), and the per-candidate scoring buffers are reused
//! across shifts, restarts and polish moves so the hot loop does not
//! allocate.

use crate::cost::{evaluate, slot_cost};
use crate::delta::{hill_climb, DeltaEvaluator};
use crate::problem::SchedulingProblem;
use crate::solution::{jitter_move, Budget, Placement, Recorder, ScheduleResult, Solution};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Randomized greedy scheduler with restarts.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyScheduler;

impl GreedyScheduler {
    /// Construct one greedy schedule using `rng`'s offer order.
    /// `recorder` accounts one evaluation per candidate start examined.
    /// `scratch` provides reusable buffers so restarts do not allocate.
    fn construct(
        &self,
        problem: &SchedulingProblem,
        rng: &mut StdRng,
        recorder: &mut Recorder,
        scratch: &mut ConstructScratch,
    ) -> Solution {
        let n = problem.offers.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);

        let residual = &mut scratch.residual;
        residual.clear();
        residual.extend_from_slice(&problem.baseline_imbalance);
        let mut placements: Vec<Option<Placement>> = vec![None; n];

        for &j in &order {
            let offer = &problem.offers[j];
            let sign = offer.demand_sign();
            scratch.ranges.clear();
            scratch.ranges.extend(offer.profile().slot_ranges());
            let ranges = &scratch.ranges;
            let price = offer.unit_price().eur();

            // Track the best (delta, shift) seen; `best_fractions` and
            // `cand_fractions` are swapped instead of reallocated.
            let mut best: Option<(f64, u32)> = None;
            for shift in 0..=offer.time_flexibility() {
                let base = problem.slot_index(offer.earliest_start() + shift);
                let mut delta = 0.0;
                scratch.cand_fractions.clear();
                for (k, r) in ranges.iter().enumerate() {
                    let t = base + k;
                    let cur = residual[t];
                    // Water-fill: drive the slot residual toward zero
                    // within the slot's energy range.
                    let target = -sign * cur;
                    let e = target.clamp(r.min().kwh(), r.max().kwh());
                    let width = (r.max() - r.min()).kwh();
                    scratch.cand_fractions.push(if width > 0.0 {
                        (e - r.min().kwh()) / width
                    } else {
                        0.0
                    });
                    let pen = problem.imbalance_penalty[t];
                    let buy = problem.prices.buy[t];
                    let sell = problem.prices.sell[t];
                    let cap = problem.prices.max_trade_per_slot;
                    delta += slot_cost(cur + sign * e, pen, buy, sell, cap)
                        - slot_cost(cur, pen, buy, sell, cap)
                        + price * e;
                }
                recorder.tick();
                if best.is_none_or(|(c, _)| delta < c) {
                    best = Some((delta, shift));
                    std::mem::swap(&mut scratch.best_fractions, &mut scratch.cand_fractions);
                }
                if recorder.exhausted() {
                    break;
                }
            }

            let (_, shift) = best.expect("at least one start evaluated");
            let fractions = scratch.best_fractions.clone();
            let start = offer.earliest_start() + shift;
            let base = problem.slot_index(start);
            for (k, (r, &f)) in ranges.iter().zip(&fractions).enumerate() {
                residual[base + k] += sign * r.lerp(f).kwh();
            }
            placements[j] = Some(Placement { start, fractions });
            if recorder.exhausted() {
                // Fill the rest at baseline so the solution is complete.
                for (p, o) in placements.iter_mut().zip(&problem.offers) {
                    if p.is_none() {
                        *p = Some(Placement::baseline(o));
                    }
                }
                break;
            }
        }

        Solution {
            placements: placements
                .into_iter()
                .map(|p| p.expect("all offers placed"))
                .collect(),
        }
    }

    /// Run greedy constructions until the budget is exhausted; keep the
    /// best. Each complete construction is polished by a short
    /// first-improvement hill climb over single-offer moves, scored
    /// through the [`DeltaEvaluator`] in O(offer duration) per move
    /// (4 moves per offer; see [`run_with_polish`](Self::run_with_polish)
    /// for the paper's pure restart greedy).
    pub fn run(&self, problem: &SchedulingProblem, budget: Budget, seed: u64) -> ScheduleResult {
        self.run_with_polish(problem, budget, seed, 4)
    }

    /// [`run`](Self::run) with an explicit polish intensity:
    /// `polish_moves_per_offer` delta-scored hill-climb moves follow each
    /// construction; `0` disables polishing, reproducing the paper's pure
    /// restart greedy.
    pub fn run_with_polish(
        &self,
        problem: &SchedulingProblem,
        budget: Budget,
        seed: u64,
        polish_moves_per_offer: usize,
    ) -> ScheduleResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut recorder = Recorder::new(budget);
        let mut scratch = ConstructScratch::default();
        let mut best: Option<(Solution, f64)> = None;
        loop {
            let candidate = self.construct(problem, &mut rng, &mut recorder, &mut scratch);
            // One full-cost pass: building the evaluator scores the
            // construction, so no separate evaluate() call is needed.
            let mut eval = DeltaEvaluator::new(problem, candidate);
            recorder.record(eval.total());

            // Delta-scored polish, stopping early on budget exhaustion
            // so restarts still happen.
            let polish_moves = polish_moves_per_offer * problem.offers.len();
            let total = hill_climb(
                &mut eval,
                &mut recorder,
                &mut rng,
                polish_moves,
                None,
                |g, o, rng| jitter_move(g, o, rng, 0.5, 0.2),
            );
            let candidate = eval.into_solution();

            if best.as_ref().is_none_or(|(_, c)| total < *c) {
                best = Some((candidate, total));
            }
            if recorder.exhausted() {
                break;
            }
        }
        let (solution, _) = best.expect("at least one construction");
        let cost = evaluate(problem, &solution);
        recorder.finish(solution, cost)
    }
}

/// Reusable buffers for [`GreedyScheduler::construct`].
#[derive(Debug, Default)]
struct ConstructScratch {
    residual: Vec<f64>,
    ranges: Vec<mirabel_core::EnergyRange>,
    best_fractions: Vec<f64>,
    cand_fractions: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MarketPrices;
    use crate::scenario::{scenario, ScenarioConfig};
    use mirabel_core::{EnergyRange, FlexOffer, Profile, TimeSlot};

    #[test]
    fn places_single_offer_optimally() {
        // Surplus at slots 4..6; one shiftable 2-slot consumer.
        let offer = FlexOffer::builder(0, 1)
            .earliest_start(TimeSlot(0))
            .time_flexibility(6)
            .profile(Profile::uniform(2, EnergyRange::fixed(3.0)))
            .build()
            .unwrap();
        let mut imbalance = vec![0.0; 8];
        imbalance[4] = -3.0;
        imbalance[5] = -3.0;
        let p = SchedulingProblem::new(
            TimeSlot(0),
            imbalance,
            vec![offer],
            MarketPrices::flat(8, 1.0, 0.0, 0.0),
            vec![0.2; 8],
        )
        .unwrap();
        let r = GreedyScheduler.run(&p, Budget::evaluations(1000), 1);
        assert_eq!(r.solution.placements[0].start, TimeSlot(4));
        assert!(r.cost.total().abs() < 1e-9);
        assert!(r.solution.is_feasible(&p));
    }

    #[test]
    fn beats_baseline_on_generated_scenario() {
        let p = scenario(ScenarioConfig {
            offer_count: 50,
            seed: 3,
            ..ScenarioConfig::default()
        });
        let baseline_cost = evaluate(&p, &Solution::baseline(&p)).total();
        let r = GreedyScheduler.run(&p, Budget::evaluations(20_000), 1);
        assert!(
            r.cost.total() < baseline_cost,
            "greedy {} vs baseline {}",
            r.cost.total(),
            baseline_cost
        );
        assert!(r.solution.is_feasible(&p));
    }

    #[test]
    fn trajectory_improves_with_restarts() {
        let p = scenario(ScenarioConfig {
            offer_count: 20,
            seed: 5,
            ..ScenarioConfig::default()
        });
        let r = GreedyScheduler.run(&p, Budget::evaluations(50_000), 2);
        assert!(!r.trajectory.is_empty());
        for w in r.trajectory.windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = scenario(ScenarioConfig {
            offer_count: 10,
            seed: 7,
            ..ScenarioConfig::default()
        });
        let a = GreedyScheduler.run(&p, Budget::evaluations(5_000), 9);
        let b = GreedyScheduler.run(&p, Budget::evaluations(5_000), 9);
        assert_eq!(a.solution, b.solution);
    }

    #[test]
    fn zero_polish_reproduces_pure_restart_greedy() {
        let p = scenario(ScenarioConfig {
            offer_count: 20,
            seed: 13,
            ..ScenarioConfig::default()
        });
        let pure = GreedyScheduler.run_with_polish(&p, Budget::evaluations(5_000), 2, 0);
        let again = GreedyScheduler.run_with_polish(&p, Budget::evaluations(5_000), 2, 0);
        assert!(pure.solution.is_feasible(&p));
        assert_eq!(
            pure.solution, again.solution,
            "pure greedy is deterministic"
        );
        let baseline = evaluate(&p, &Solution::baseline(&p)).total();
        assert!(pure.cost.total() < baseline);

        // Behavioral check of the unpolished path: on the single-offer
        // instance whose greedy construction is provably optimal, the
        // pure variant must find the optimum on its own (no polish to
        // paper over a broken construction).
        let offer = FlexOffer::builder(0, 1)
            .earliest_start(TimeSlot(0))
            .time_flexibility(6)
            .profile(Profile::uniform(2, EnergyRange::fixed(3.0)))
            .build()
            .unwrap();
        let mut imbalance = vec![0.0; 8];
        imbalance[4] = -3.0;
        imbalance[5] = -3.0;
        let single = SchedulingProblem::new(
            TimeSlot(0),
            imbalance,
            vec![offer],
            MarketPrices::flat(8, 1.0, 0.0, 0.0),
            vec![0.2; 8],
        )
        .unwrap();
        let r = GreedyScheduler.run_with_polish(&single, Budget::evaluations(1000), 1, 0);
        assert_eq!(r.solution.placements[0].start, TimeSlot(4));
        assert!(r.cost.total().abs() < 1e-9);
    }

    #[test]
    fn tight_budget_still_returns_complete_solution() {
        let p = scenario(ScenarioConfig {
            offer_count: 30,
            seed: 11,
            ..ScenarioConfig::default()
        });
        let r = GreedyScheduler.run(&p, Budget::evaluations(10), 1);
        assert_eq!(r.solution.placements.len(), 30);
        assert!(r.solution.is_feasible(&p));
    }
}
