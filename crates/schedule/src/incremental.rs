//! Incremental rescheduling (paper §5/§8 interplay).
//!
//! "Based on forecasts, schedules for RES supply and demand are initially
//! computed and afterwards incrementally maintained if forecast values
//! change over time." When a publish-subscribe forecast notification
//! arrives, the BRP does not re-run the full scheduler; it repairs the
//! previous solution with a budgeted hill climb over single-offer moves.
//!
//! Two repair entry points implement the event-driven replanning
//! pipeline (forecast event → rebase → scoped repair):
//!
//! 1. [`reschedule`] — the compatibility path: adopt a previous solution
//!    under a rebuilt problem and repair it over *all* offers with a
//!    single chain. Pays one full `DeltaEvaluator` resync.
//! 2. [`repair_scope`] + [`repair_parallel`] — the incremental path: the
//!    caller holds a *live* [`DeltaEvaluator`], calls
//!    [`DeltaEvaluator::rebase`] with the slots a typed forecast event
//!    reported changed, restricts moves to the offers that can reach
//!    those slots, and runs K independent hill-climb chains on the
//!    shared worker pool (per-move state is already thread-local),
//!    keeping the best chain. Work is proportional to the *change*, not
//!    the problem.
//!
//! Both parallel entry points ([`repair_parallel`], [`multi_start`])
//! dispatch their chains onto a persistent
//! [`mirabel_core::exec::Pool`] instead of spawning scoped threads per
//! call: replanning is the steady-state hot path, and `Pool::run`
//! returns chain results in chain-index order, so the best-of-K
//! tie-break — and therefore the chosen schedule — is identical for any
//! pool width.

use crate::cost::evaluate;
use crate::delta::{hill_climb, DeltaEvaluator};
use crate::problem::SchedulingProblem;
use crate::solution::{Budget, Placement, Recorder, ScheduleResult, Solution};
use mirabel_core::exec::Pool;
use mirabel_core::FlexOffer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The single-offer repair move shared by [`reschedule`] and the
/// parallel repair chains: shift the start, re-draw one fraction, or
/// jitter all fractions — always clamped back into the offer's
/// constraints.
fn repair_move(g: &mut Placement, offer: &FlexOffer, rng: &mut StdRng) {
    match rng.gen_range(0..3) {
        0 if offer.time_flexibility() > 0 => {
            let span = (offer.time_flexibility() / 3).max(1) as i64;
            g.start = mirabel_core::TimeSlot(g.start.index() + rng.gen_range(-span..=span));
        }
        1 => {
            let k = rng.gen_range(0..g.fractions.len());
            g.fractions[k] = rng.gen_range(0.0..=1.0);
        }
        _ => {
            for f in &mut g.fractions {
                *f += rng.gen_range(-0.15..0.15);
            }
        }
    }
    g.repair(offer);
}

/// Repair `previous` against a problem with updated forecasts.
///
/// The previous solution's placements are first clamped to the (possibly
/// changed) offer constraints, then improved by first-improvement hill
/// climbing: random single-offer start shifts and fraction jitters,
/// keeping only moves that reduce total cost. Moves are scored through a
/// [`DeltaEvaluator`] — O(offer duration) per move — which is what makes
/// repair after a forecast notification cheaper than any full re-run.
pub fn reschedule(
    problem: &SchedulingProblem,
    previous: &Solution,
    budget: Budget,
    seed: u64,
) -> ScheduleResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut recorder = Recorder::new(budget);

    // Adopt and repair the previous placements (offer list must match).
    let current = if previous.placements.len() == problem.offers.len() {
        let mut s = previous.clone();
        for (p, o) in s.placements.iter_mut().zip(&problem.offers) {
            p.repair(o);
        }
        s
    } else {
        Solution::baseline(problem)
    };
    let mut eval = DeltaEvaluator::new(problem, current);
    recorder.record(eval.total());

    hill_climb(
        &mut eval,
        &mut recorder,
        &mut rng,
        usize::MAX,
        None,
        repair_move,
    );

    let current = eval.into_solution();
    let cost = evaluate(problem, &current);
    recorder.finish(current, cost)
}

/// The horizon-index range an offer's placement can reach:
/// `[earliest_start, latest_start + duration)` as indices into the
/// problem's horizon. Slots outside this range can never be touched by
/// any move of the offer — the unit both [`repair_scope`] and the node
/// runtimes' offer-delta folding reason in.
pub fn offer_reach(problem: &SchedulingProblem, offer: &FlexOffer) -> std::ops::Range<usize> {
    let lo = problem.slot_index(offer.earliest_start());
    lo..lo + (offer.time_flexibility() + offer.duration()) as usize
}

/// The offers a forecast delta can involve: indices of offers whose
/// *reachable* window ([`offer_reach`]) overlaps at least one changed
/// slot. Moving any other offer cannot touch a changed slot, so a
/// repair after a small forecast update restricts its moves to this
/// scope. `changed_slots` are horizon indices; order and duplicates are
/// irrelevant.
pub fn repair_scope(problem: &SchedulingProblem, changed_slots: &[usize]) -> Vec<usize> {
    let mut changed: Vec<usize> = changed_slots.to_vec();
    changed.sort_unstable();
    changed.dedup();
    problem
        .offers
        .iter()
        .enumerate()
        .filter(|(_, o)| {
            let reach = offer_reach(problem, o);
            let k = changed.partition_point(|&t| t < reach.start);
            changed.get(k).is_some_and(|&t| t < reach.end)
        })
        .map(|(j, _)| j)
        .collect()
}

/// Configuration for [`repair_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct RepairConfig {
    /// Number of independent hill-climb chains (K). Chain `i` is seeded
    /// with `seed + i`, so chain 0 reproduces the single-chain result and
    /// the best-of-K cost is never worse than it.
    pub chains: usize,
    /// Proposed moves per chain. Chains run concurrently, so the
    /// wall-clock budget of the whole repair is one chain's worth.
    pub moves_per_chain: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for RepairConfig {
    fn default() -> RepairConfig {
        RepairConfig {
            chains: 4,
            moves_per_chain: 1_500,
            seed: 0,
        }
    }
}

/// Parallel multi-start repair on a live evaluator: fork K chains, run a
/// scoped first-improvement hill climb in each (different seeds, same
/// starting solution), and adopt the best chain's placements back into
/// `eval` if it improves on the current cost. Returns the final total.
///
/// `scope` lists the offer indices chains may move (usually
/// [`repair_scope`] of the changed slots); an empty scope is a no-op.
/// Each chain owns a [`DeltaEvaluator::fork`] — per-move state is
/// thread-local, so the chains are embarrassingly parallel and the whole
/// repair costs one chain of wall-clock time on idle cores. Chains run
/// on `pool`; chain `i` is a pure function of its index, so the result
/// is identical for any pool width.
pub fn repair_parallel(
    eval: &mut DeltaEvaluator<'_>,
    scope: &[usize],
    cfg: RepairConfig,
    pool: &Pool,
) -> f64 {
    if scope.is_empty() || cfg.chains == 0 || cfg.moves_per_chain == 0 {
        return eval.total();
    }
    let shared = &*eval;
    let chains: Vec<(f64, Solution)> = pool.run(cfg.chains, |i| {
        let mut chain = shared.fork();
        let seed = cfg.seed.wrapping_add(i as u64);
        let total = run_chain(&mut chain, scope, cfg.moves_per_chain, seed);
        (total, chain.into_solution())
    });
    let (best_total, best) = chains
        .into_iter()
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("at least one chain");
    if best_total < eval.total() {
        eval.adopt_scoped(&best, scope);
    }
    eval.total()
}

/// Parallel multi-start for the *initial* schedulers: run `chains`
/// independent scheduler invocations on the shared worker pool — chain
/// `i` seeded with `base_seed + i` — and keep the lowest-cost result.
/// Chain 0 uses `base_seed` itself, so the best-of-K result is never
/// worse than the corresponding single-start run; with `chains == 1`
/// it reproduces the single-start run exactly.
///
/// This is the construction-side sibling of [`repair_parallel`]: the
/// repair path forks a live [`DeltaEvaluator`] because its chains share
/// a starting solution, whereas initial constructions are independent,
/// so each chain simply runs the scheduler closure (`GreedyScheduler`,
/// `AnnealingScheduler`, …) with its own seed. `evaluations` in the
/// returned result sums all chains (the cost actually paid);
/// wall-clock is one chain's worth on idle cores.
pub fn multi_start<F>(chains: usize, base_seed: u64, pool: &Pool, run: F) -> ScheduleResult
where
    F: Fn(u64) -> ScheduleResult + Sync,
{
    assert!(chains >= 1, "multi_start needs at least one chain");
    if chains == 1 {
        return run(base_seed);
    }
    let mut results: Vec<ScheduleResult> =
        pool.run(chains, |i| run(base_seed.wrapping_add(i as u64)));
    let total_evaluations: usize = results.iter().map(|r| r.evaluations).sum();
    let mut best = 0;
    for i in 1..results.len() {
        if results[i].cost.total() < results[best].cost.total() {
            best = i;
        }
    }
    let mut winner = results.swap_remove(best);
    winner.evaluations = total_evaluations;
    winner
}

/// One repair chain: a budgeted scoped hill climb (shared mutation
/// kernel) on a forked evaluator.
fn run_chain(chain: &mut DeltaEvaluator<'_>, scope: &[usize], moves: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut recorder = Recorder::new(Budget::evaluations(moves));
    hill_climb(
        chain,
        &mut recorder,
        &mut rng,
        moves,
        Some(scope),
        repair_move,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyScheduler;
    use crate::scenario::{scenario, ScenarioConfig};

    fn shifted_forecast(mut p: SchedulingProblem, shift: f64) -> SchedulingProblem {
        for v in &mut p.baseline_imbalance {
            *v += shift;
        }
        p
    }

    #[test]
    fn repairs_previous_solution_under_new_forecast() {
        let p0 = scenario(ScenarioConfig {
            offer_count: 30,
            seed: 6,
            ..ScenarioConfig::default()
        });
        let initial = GreedyScheduler.run(&p0, Budget::evaluations(20_000), 1);

        // forecast update: systematic extra deficit
        let p1 = shifted_forecast(p0.clone(), 0.8);
        let stale_cost = evaluate(&p1, &initial.solution).total();
        let repaired = reschedule(&p1, &initial.solution, Budget::evaluations(5_000), 2);
        assert!(
            repaired.cost.total() <= stale_cost,
            "repaired {} vs stale {}",
            repaired.cost.total(),
            stale_cost
        );
        assert!(repaired.solution.is_feasible(&p1));
    }

    #[test]
    fn cheaper_than_full_rerun_for_small_changes() {
        let p0 = scenario(ScenarioConfig {
            offer_count: 40,
            seed: 8,
            ..ScenarioConfig::default()
        });
        let initial = GreedyScheduler.run(&p0, Budget::evaluations(30_000), 3);
        let p1 = shifted_forecast(p0.clone(), 0.1); // small forecast change
        let repaired = reschedule(&p1, &initial.solution, Budget::evaluations(2_000), 4);
        // With a tiny budget the repair should already be close to (or
        // better than) a fresh greedy run with the same tiny budget.
        let fresh = GreedyScheduler.run(&p1, Budget::evaluations(2_000), 4);
        assert!(repaired.cost.total() <= fresh.cost.total() * 1.1 + 1e-9);
    }

    #[test]
    fn mismatched_offer_list_falls_back_to_baseline() {
        let p = scenario(ScenarioConfig {
            offer_count: 5,
            seed: 2,
            ..ScenarioConfig::default()
        });
        let wrong = Solution { placements: vec![] };
        let r = reschedule(&p, &wrong, Budget::evaluations(200), 1);
        assert_eq!(r.solution.placements.len(), 5);
        assert!(r.solution.is_feasible(&p));
    }

    #[test]
    fn repair_scope_finds_overlapping_offers() {
        let p = scenario(ScenarioConfig {
            offer_count: 80,
            seed: 11,
            ..ScenarioConfig::default()
        });
        let changed: Vec<usize> = (40..48).collect();
        let scope = repair_scope(&p, &changed);
        assert!(!scope.is_empty(), "some offer should reach slots 40..48");
        assert!(scope.len() < p.offers.len(), "scope must actually restrict");
        for (j, o) in p.offers.iter().enumerate() {
            let lo = p.slot_index(o.earliest_start());
            let hi = lo + (o.time_flexibility() + o.duration()) as usize;
            let overlaps = changed.iter().any(|&t| (lo..hi).contains(&t));
            assert_eq!(scope.contains(&j), overlaps, "offer {j} [{lo},{hi})");
        }
        // No changed slots → empty scope.
        assert!(repair_scope(&p, &[]).is_empty());
    }

    #[test]
    fn parallel_repair_never_worse_than_single_chain() {
        let p = scenario(ScenarioConfig {
            offer_count: 100,
            seed: 13,
            ..ScenarioConfig::default()
        });
        let initial = GreedyScheduler.run(&p, Budget::evaluations(10_000), 5);

        // Forecast delta on ~10% of the horizon.
        let changed: Vec<usize> = (20..30).collect();
        let mut new_baseline = p.baseline_imbalance.clone();
        for &t in &changed {
            new_baseline[t] += 1.5;
        }
        let scope = repair_scope(&p, &changed);
        assert!(!scope.is_empty());

        let single_cfg = RepairConfig {
            chains: 1,
            moves_per_chain: 800,
            seed: 7,
        };
        let multi_cfg = RepairConfig {
            chains: 4,
            ..single_cfg
        };

        let pool = Pool::new(4);
        let mut single = DeltaEvaluator::new_owned(p.clone(), initial.solution.clone());
        single.rebase(&new_baseline, &changed);
        let single_total = repair_parallel(&mut single, &scope, single_cfg, &pool);

        let mut multi = DeltaEvaluator::new_owned(p.clone(), initial.solution.clone());
        multi.rebase(&new_baseline, &changed);
        let rebased_total = multi.total();
        let multi_total = repair_parallel(&mut multi, &scope, multi_cfg, &pool);

        // Chain 0 of the multi-start shares the single chain's seed, so
        // best-of-4 can never lose to the single chain.
        assert!(
            multi_total <= single_total + 1e-9,
            "multi {multi_total} vs single {single_total}"
        );
        assert!(multi_total <= rebased_total, "repair must not worsen cost");

        // The adopted result matches the reference evaluation.
        let reference = evaluate(multi.problem(), multi.solution()).total();
        assert!((multi_total - reference).abs() < 1e-6);
        assert!(multi.solution().is_feasible(multi.problem()));
    }

    #[test]
    fn multi_start_single_chain_reproduces_single_run() {
        let p = scenario(ScenarioConfig {
            offer_count: 20,
            seed: 17,
            ..ScenarioConfig::default()
        });
        let budget = Budget::evaluations(5_000);
        let direct = GreedyScheduler.run(&p, budget, 42);
        let multi = multi_start(1, 42, Pool::global(), |s| {
            GreedyScheduler.run(&p, budget, s)
        });
        assert_eq!(direct.solution, multi.solution);
        assert_eq!(direct.evaluations, multi.evaluations);
    }

    #[test]
    fn multi_start_never_loses_to_single_start() {
        let p = scenario(ScenarioConfig {
            offer_count: 40,
            seed: 19,
            ..ScenarioConfig::default()
        });
        let budget = Budget::evaluations(4_000);
        let pool = Pool::new(4);
        let single = GreedyScheduler.run(&p, budget, 7);
        let multi = multi_start(4, 7, &pool, |s| GreedyScheduler.run(&p, budget, s));
        // Chain 0 shares the single run's seed, so best-of-4 can never
        // be worse than it.
        assert!(
            multi.cost.total() <= single.cost.total() + 1e-9,
            "multi {} vs single {}",
            multi.cost.total(),
            single.cost.total()
        );
        assert!(multi.solution.is_feasible(&p));
        // Evaluations account for every chain.
        assert!(multi.evaluations >= single.evaluations);
        // Determinism: independent of thread scheduling.
        let again = multi_start(4, 7, &pool, |s| GreedyScheduler.run(&p, budget, s));
        assert_eq!(multi.solution, again.solution);
    }

    #[test]
    fn pool_width_does_not_change_results() {
        // The determinism contract of the shared pool: repair chains and
        // multi-start restarts produce bit-identical schedules whether
        // they run serially (width 1) or across 2/8 lanes.
        let p = scenario(ScenarioConfig {
            offer_count: 60,
            seed: 23,
            ..ScenarioConfig::default()
        });
        let initial = GreedyScheduler.run(&p, Budget::evaluations(6_000), 3);
        let changed: Vec<usize> = (30..40).collect();
        let mut new_baseline = p.baseline_imbalance.clone();
        for &t in &changed {
            new_baseline[t] -= 1.0;
        }
        let scope = repair_scope(&p, &changed);
        assert!(!scope.is_empty());
        let cfg = RepairConfig {
            chains: 3,
            moves_per_chain: 500,
            seed: 11,
        };

        let repair_with = |width: usize| {
            let pool = Pool::new(width);
            let mut eval = DeltaEvaluator::new_owned(p.clone(), initial.solution.clone());
            eval.rebase(&new_baseline, &changed);
            let total = repair_parallel(&mut eval, &scope, cfg, &pool);
            (total, eval.solution().clone())
        };
        let start_with = |width: usize| {
            let pool = Pool::new(width);
            multi_start(5, 17, &pool, |s| {
                GreedyScheduler.run(&p, Budget::evaluations(2_000), s)
            })
        };

        let (ref_total, ref_solution) = repair_with(1);
        let ref_start = start_with(1);
        for width in [2, 8] {
            let (total, solution) = repair_with(width);
            assert_eq!(total, ref_total, "repair total at width {width}");
            assert_eq!(solution, ref_solution, "repair solution at width {width}");
            let start = start_with(width);
            assert_eq!(start.solution, ref_start.solution, "start at width {width}");
            assert_eq!(start.evaluations, ref_start.evaluations);
        }
    }

    #[test]
    fn empty_scope_is_noop() {
        let p = scenario(ScenarioConfig {
            offer_count: 10,
            seed: 3,
            ..ScenarioConfig::default()
        });
        let mut eval = DeltaEvaluator::new(&p, Solution::baseline(&p));
        let before = eval.total();
        let after = repair_parallel(&mut eval, &[], RepairConfig::default(), Pool::global());
        assert_eq!(before, after);
    }
}
