//! Incremental rescheduling (paper §5/§8 interplay).
//!
//! "Based on forecasts, schedules for RES supply and demand are initially
//! computed and afterwards incrementally maintained if forecast values
//! change over time." When a publish-subscribe forecast notification
//! arrives, the BRP does not re-run the full scheduler; it repairs the
//! previous solution with a budgeted hill climb over single-offer moves.

use crate::cost::evaluate;
use crate::delta::{hill_climb, DeltaEvaluator};
use crate::problem::SchedulingProblem;
use crate::solution::{Budget, Recorder, ScheduleResult, Solution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Repair `previous` against a problem with updated forecasts.
///
/// The previous solution's placements are first clamped to the (possibly
/// changed) offer constraints, then improved by first-improvement hill
/// climbing: random single-offer start shifts and fraction jitters,
/// keeping only moves that reduce total cost. Moves are scored through a
/// [`DeltaEvaluator`] — O(offer duration) per move — which is what makes
/// repair after a forecast notification cheaper than any full re-run.
pub fn reschedule(
    problem: &SchedulingProblem,
    previous: &Solution,
    budget: Budget,
    seed: u64,
) -> ScheduleResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut recorder = Recorder::new(budget);

    // Adopt and repair the previous placements (offer list must match).
    let current = if previous.placements.len() == problem.offers.len() {
        let mut s = previous.clone();
        for (p, o) in s.placements.iter_mut().zip(&problem.offers) {
            p.repair(o);
        }
        s
    } else {
        Solution::baseline(problem)
    };
    let mut eval = DeltaEvaluator::new(problem, current);
    recorder.record(eval.total());

    hill_climb(
        &mut eval,
        &mut recorder,
        &mut rng,
        usize::MAX,
        |g, offer, rng| {
            match rng.gen_range(0..3) {
                0 if offer.time_flexibility() > 0 => {
                    let span = (offer.time_flexibility() / 3).max(1) as i64;
                    g.start = mirabel_core::TimeSlot(g.start.index() + rng.gen_range(-span..=span));
                }
                1 => {
                    let k = rng.gen_range(0..g.fractions.len());
                    g.fractions[k] = rng.gen_range(0.0..=1.0);
                }
                _ => {
                    for f in &mut g.fractions {
                        *f += rng.gen_range(-0.15..0.15);
                    }
                }
            }
            g.repair(offer);
        },
    );

    let current = eval.into_solution();
    let cost = evaluate(problem, &current);
    recorder.finish(current, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyScheduler;
    use crate::scenario::{scenario, ScenarioConfig};

    fn shifted_forecast(mut p: SchedulingProblem, shift: f64) -> SchedulingProblem {
        for v in &mut p.baseline_imbalance {
            *v += shift;
        }
        p
    }

    #[test]
    fn repairs_previous_solution_under_new_forecast() {
        let p0 = scenario(ScenarioConfig {
            offer_count: 30,
            seed: 6,
            ..ScenarioConfig::default()
        });
        let initial = GreedyScheduler.run(&p0, Budget::evaluations(20_000), 1);

        // forecast update: systematic extra deficit
        let p1 = shifted_forecast(p0.clone(), 0.8);
        let stale_cost = evaluate(&p1, &initial.solution).total();
        let repaired = reschedule(&p1, &initial.solution, Budget::evaluations(5_000), 2);
        assert!(
            repaired.cost.total() <= stale_cost,
            "repaired {} vs stale {}",
            repaired.cost.total(),
            stale_cost
        );
        assert!(repaired.solution.is_feasible(&p1));
    }

    #[test]
    fn cheaper_than_full_rerun_for_small_changes() {
        let p0 = scenario(ScenarioConfig {
            offer_count: 40,
            seed: 8,
            ..ScenarioConfig::default()
        });
        let initial = GreedyScheduler.run(&p0, Budget::evaluations(30_000), 3);
        let p1 = shifted_forecast(p0.clone(), 0.1); // small forecast change
        let repaired = reschedule(&p1, &initial.solution, Budget::evaluations(2_000), 4);
        // With a tiny budget the repair should already be close to (or
        // better than) a fresh greedy run with the same tiny budget.
        let fresh = GreedyScheduler.run(&p1, Budget::evaluations(2_000), 4);
        assert!(repaired.cost.total() <= fresh.cost.total() * 1.1 + 1e-9);
    }

    #[test]
    fn mismatched_offer_list_falls_back_to_baseline() {
        let p = scenario(ScenarioConfig {
            offer_count: 5,
            seed: 2,
            ..ScenarioConfig::default()
        });
        let wrong = Solution { placements: vec![] };
        let r = reschedule(&p, &wrong, Budget::evaluations(200), 1);
        assert_eq!(r.solution.placements.len(), 5);
        assert!(r.solution.is_feasible(&p));
    }
}
