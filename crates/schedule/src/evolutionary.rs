//! The evolutionary algorithm (paper §6, \[3\]).
//!
//! "We also developed an evolutionary algorithm that starts with a
//! population of randomly created solutions and uses evolutionary
//! principles of selection, crossover and mutation to find progressively
//! better solutions."
//!
//! Representation: one gene per flex-offer, a gene being the offer's
//! [`Placement`] (start shift + per-slot energy fractions). Uniform
//! per-gene crossover and repair-after-mutation keep every individual
//! feasible by construction.
//!
//! The EA is *memetic*: after each generation the best individual is
//! refined by a short burst of single-gene hill-climb moves scored
//! through the [`DeltaEvaluator`] — the local-mutation path costs
//! O(offer duration) per move instead of a full re-evaluation, so the
//! refinement is nearly free relative to the crossover evaluations.

use crate::cost::evaluate;
use crate::delta::{hill_climb, DeltaEvaluator};
use crate::problem::SchedulingProblem;
use crate::solution::{Budget, Placement, Recorder, ScheduleResult, Solution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Evolutionary algorithm configuration.
#[derive(Debug, Clone, Copy)]
pub struct EaConfig {
    /// Population size.
    pub population: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability of taking a gene from the second parent.
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// Delta-scored hill-climb moves applied to the generation's best
    /// individual (memetic refinement); `0` disables the local search.
    pub local_search_moves: usize,
}

impl Default for EaConfig {
    fn default() -> EaConfig {
        EaConfig {
            population: 32,
            tournament: 3,
            crossover_rate: 0.5,
            mutation_rate: 0.15,
            elitism: 2,
            local_search_moves: 16,
        }
    }
}

/// The evolutionary scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvolutionaryScheduler {
    /// EA parameters.
    pub config: EaConfig,
}

impl EvolutionaryScheduler {
    /// Mutate one gene: shift the start and/or jitter energy fractions.
    fn mutate_gene(placement: &mut Placement, offer: &mirabel_core::FlexOffer, rng: &mut StdRng) {
        let tf = offer.time_flexibility();
        if tf > 0 && rng.gen_bool(0.7) {
            let span = (tf / 4).max(1) as i64;
            let delta = rng.gen_range(-span..=span);
            let shifted = placement.start.index() + delta;
            placement.start = mirabel_core::TimeSlot(shifted);
        }
        if rng.gen_bool(0.7) {
            for f in &mut placement.fractions {
                if rng.gen_bool(0.4) {
                    *f += rng.gen_range(-0.25..0.25);
                }
            }
        }
        placement.repair(offer);
    }

    /// Run the EA until the budget is exhausted; the population is seeded
    /// with random individuals plus extras passed in `seeds` (used by the
    /// hybrid scheduler).
    pub fn run_seeded(
        &self,
        problem: &SchedulingProblem,
        budget: Budget,
        seed: u64,
        seeds: Vec<Solution>,
    ) -> ScheduleResult {
        let cfg = self.config;
        assert!(cfg.population >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut recorder = Recorder::new(budget);

        let mut population: Vec<(Solution, f64)> = Vec::with_capacity(cfg.population);
        for s in seeds.into_iter().take(cfg.population) {
            let c = evaluate(problem, &s).total();
            recorder.record(c);
            population.push((s, c));
        }
        while population.len() < cfg.population {
            let s = Solution::random(problem, &mut rng);
            let c = evaluate(problem, &s).total();
            recorder.record(c);
            population.push((s, c));
        }

        while !recorder.exhausted() {
            population.sort_by(|a, b| a.1.total_cmp(&b.1));
            let mut next: Vec<(Solution, f64)> =
                population.iter().take(cfg.elitism).cloned().collect();

            let tournament = |rng: &mut StdRng, pop: &[(Solution, f64)]| -> usize {
                let mut best = rng.gen_range(0..pop.len());
                for _ in 1..cfg.tournament {
                    let c = rng.gen_range(0..pop.len());
                    if pop[c].1 < pop[best].1 {
                        best = c;
                    }
                }
                best
            };

            while next.len() < cfg.population && !recorder.exhausted() {
                let a = tournament(&mut rng, &population);
                let b = tournament(&mut rng, &population);
                let (pa, pb) = (&population[a].0, &population[b].0);
                // uniform per-gene crossover
                let mut child = pa.clone();
                for (g, gene_b) in child.placements.iter_mut().zip(&pb.placements) {
                    if rng.gen_bool(cfg.crossover_rate) {
                        *g = gene_b.clone();
                    }
                }
                // mutation + repair
                for (g, offer) in child.placements.iter_mut().zip(&problem.offers) {
                    if rng.gen_bool(cfg.mutation_rate) {
                        Self::mutate_gene(g, offer, &mut rng);
                    }
                }
                let c = evaluate(problem, &child).total();
                recorder.record(c);
                next.push((child, c));
            }
            population = next;

            // Memetic refinement: first-improvement hill climb on the
            // generation's best individual, scored via the delta
            // evaluator (O(offer duration) per move).
            if cfg.local_search_moves > 0 && !problem.offers.is_empty() && !recorder.exhausted() {
                let best_idx = population
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                    .map(|(i, _)| i)
                    .expect("population is non-empty");
                let (sol, _) = population.swap_remove(best_idx);
                let mut eval = DeltaEvaluator::new(problem, sol);
                // Building the evaluator is one full-cost evaluation's
                // worth of work; charge it to the budget like any other.
                recorder.tick();
                let f_cur = hill_climb(
                    &mut eval,
                    &mut recorder,
                    &mut rng,
                    cfg.local_search_moves,
                    None,
                    Self::mutate_gene,
                );
                population.push((eval.into_solution(), f_cur));
            }
        }

        population.sort_by(|a, b| a.1.total_cmp(&b.1));
        let best = population.remove(0).0;
        let cost = evaluate(problem, &best);
        recorder.finish(best, cost)
    }

    /// Run the EA from a fully random population (the paper's setup).
    pub fn run(&self, problem: &SchedulingProblem, budget: Budget, seed: u64) -> ScheduleResult {
        self.run_seeded(problem, budget, seed, Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{scenario, ScenarioConfig};

    fn small() -> SchedulingProblem {
        scenario(ScenarioConfig {
            offer_count: 10,
            seed: 4,
            ..ScenarioConfig::default()
        })
    }

    #[test]
    fn improves_over_random_baseline() {
        let p = small();
        let mut rng = StdRng::seed_from_u64(0);
        let random_cost = evaluate(&p, &Solution::random(&p, &mut rng)).total();
        let r = EvolutionaryScheduler::default().run(&p, Budget::evaluations(3_000), 1);
        assert!(
            r.cost.total() < random_cost,
            "EA {} vs random {}",
            r.cost.total(),
            random_cost
        );
        assert!(r.solution.is_feasible(&p));
    }

    #[test]
    fn trajectory_monotone() {
        let p = small();
        let r = EvolutionaryScheduler::default().run(&p, Budget::evaluations(2_000), 3);
        assert!(!r.trajectory.is_empty());
        for w in r.trajectory.windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost);
            assert!(w[1].evaluations >= w[0].evaluations);
        }
        assert!(r.evaluations <= 2_100);
    }

    #[test]
    fn longer_budget_no_worse() {
        let p = small();
        let short = EvolutionaryScheduler::default().run(&p, Budget::evaluations(500), 5);
        let long = EvolutionaryScheduler::default().run(&p, Budget::evaluations(5_000), 5);
        assert!(long.cost.total() <= short.cost.total() + 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = small();
        let a = EvolutionaryScheduler::default().run(&p, Budget::evaluations(1_000), 8);
        let b = EvolutionaryScheduler::default().run(&p, Budget::evaluations(1_000), 8);
        assert_eq!(a.cost.total(), b.cost.total());
    }

    #[test]
    fn seeded_population_starts_from_seeds() {
        let p = small();
        // Seed with the baseline solution: the EA must never be worse.
        let baseline = Solution::baseline(&p);
        let baseline_cost = evaluate(&p, &baseline).total();
        let r = EvolutionaryScheduler::default().run_seeded(
            &p,
            Budget::evaluations(300),
            2,
            vec![baseline],
        );
        assert!(r.cost.total() <= baseline_cost + 1e-9);
    }

    #[test]
    fn zero_offers_instance() {
        let p = scenario(ScenarioConfig {
            offer_count: 0,
            seed: 1,
            ..ScenarioConfig::default()
        });
        let r = EvolutionaryScheduler::default().run(&p, Budget::evaluations(100), 1);
        assert!(r.solution.placements.is_empty());
        assert!(r.cost.total().is_finite());
    }
}
