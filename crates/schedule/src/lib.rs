//! # mirabel-schedule
//!
//! The MIRABEL scheduling component (paper §6).
//!
//! "Scheduling consists of fixing start times and energy flexibilities of
//! all given flex-offers and setting the amount of energy that will be
//! sold to (and bought from) the market, while optimizing the total cost
//! of the resulting schedule. The schedule cost is calculated as the sum
//! of (1) costs of remaining mismatches, (2) costs of all given aggregated
//! flex-offers and (3) costs of energy sold to (and bought from) the
//! market."
//!
//! * [`problem`] — the scheduling problem: forecast imbalance, offers,
//!   market prices, peak-weighted mismatch penalties;
//! * [`solution`] — a candidate schedule (start + per-slot energy
//!   fraction per offer) that satisfies flex-offer constraints *by
//!   construction*;
//! * [`cost`] — the composed cost function with closed-form optimal
//!   market transactions;
//! * [`delta`] — O(move)-time incremental scoring for the search hot
//!   loops (see below);
//! * [`greedy`] — the randomized greedy search;
//! * [`evolutionary`] — the evolutionary algorithm \[3\], with a
//!   delta-scored memetic refinement step;
//! * [`anneal`] — a simulated-annealing scheduler and a greedy-seeded
//!   hybrid (the paper's "hybridizing the existing ones" future work);
//! * [`exhaustive`] — exact enumeration for tiny instances (the paper's
//!   850-million-solution optimality probe);
//! * [`incremental`] — rescheduling after forecast changes, including
//!   the scoped parallel multi-start repair behind event-driven
//!   replanning and [`incremental::multi_start`], the best-of-K
//!   parallel restart harness for the initial schedulers — both
//!   dispatch their chains onto the shared deterministic worker pool
//!   ([`mirabel_core::exec::Pool`]), so steady-state replanning wakes
//!   parked workers instead of spawning threads and the chosen schedule
//!   is identical for any pool width;
//! * [`mod@scenario`] — intra-day scenario generator for the Figure 6
//!   experiments.
//!
//! ## Full vs. delta evaluation
//!
//! Two evaluation paths coexist by design:
//!
//! 1. **Full:** [`cost::evaluate`] rebuilds the residual-imbalance vector
//!    and prices every horizon slot — O(offers × duration + horizon).
//!    It is the *reference semantics* of the cost model: simple, stateless
//!    and obviously correct. Schedulers use it once per run to produce
//!    the final [`CostBreakdown`].
//! 2. **Delta:** [`DeltaEvaluator`] caches the residual vector, per-slot
//!    market/mismatch cost and per-offer activation cost, and updates the
//!    running total in O(offer duration) when a single offer's placement
//!    changes — the only kind of move the metaheuristics make. The
//!    propose → score → accept/revert loop is allocation-free.
//!
//! The two paths are kept honest against each other three ways: a
//! debug-build assertion inside every committed move, property tests
//! replaying random move sequences, and the `full_vs_delta` bench that
//! tracks the speedup (per-move delta cost is independent of the offer
//! count, so the gap widens linearly with instance size).
//!
//! ## Event-driven incremental replanning
//!
//! When forecasts change *after* a schedule exists, work should be
//! proportional to the change, not the problem. The pipeline is:
//!
//! 1. a typed forecast change event (see `mirabel_forecast::pubsub`)
//!    names the slot ranges that actually moved;
//! 2. [`DeltaEvaluator::rebase`] re-prices exactly those slots on the
//!    *live* evaluator kept from the previous planning run — O(changed
//!    slots), no resync;
//! 3. [`incremental::repair_scope`] restricts the repair to offers whose
//!    reachable windows overlap the changed slots;
//! 4. [`incremental::repair_parallel`] runs K multi-start hill-climb
//!    chains on forked evaluators (thread-local per-move state) and
//!    adopts the best chain.
//!
//! The `rebase_vs_resync` bench tracks this path against the full
//! resync-and-reschedule alternative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod cost;
pub mod delta;
pub mod evolutionary;
pub mod exhaustive;
pub mod greedy;
pub mod incremental;
pub mod problem;
pub mod scenario;
pub mod solution;

pub use anneal::{AnnealingScheduler, HybridScheduler};
pub use cost::{evaluate, CostBreakdown};
pub use delta::DeltaEvaluator;
pub use evolutionary::{EaConfig, EvolutionaryScheduler};
pub use exhaustive::{search_space_size, ExhaustiveScheduler};
pub use greedy::GreedyScheduler;
pub use incremental::{
    multi_start, offer_reach, repair_parallel, repair_scope, reschedule, RepairConfig,
};
pub use problem::{MarketPrices, SchedulingProblem};
pub use scenario::{scenario, ScenarioConfig};
pub use solution::{Budget, Placement, ScheduleResult, Solution, TrajectoryPoint};
