//! # mirabel-schedule
//!
//! The MIRABEL scheduling component (paper §6).
//!
//! "Scheduling consists of fixing start times and energy flexibilities of
//! all given flex-offers and setting the amount of energy that will be
//! sold to (and bought from) the market, while optimizing the total cost
//! of the resulting schedule. The schedule cost is calculated as the sum
//! of (1) costs of remaining mismatches, (2) costs of all given aggregated
//! flex-offers and (3) costs of energy sold to (and bought from) the
//! market."
//!
//! * [`problem`] — the scheduling problem: forecast imbalance, offers,
//!   market prices, peak-weighted mismatch penalties;
//! * [`solution`] — a candidate schedule (start + per-slot energy
//!   fraction per offer) that satisfies flex-offer constraints *by
//!   construction*;
//! * [`cost`] — the composed cost function with closed-form optimal
//!   market transactions;
//! * [`greedy`] — the randomized greedy search;
//! * [`evolutionary`] — the evolutionary algorithm \[3\];
//! * [`anneal`] — a simulated-annealing scheduler and a greedy-seeded
//!   hybrid (the paper's "hybridizing the existing ones" future work);
//! * [`exhaustive`] — exact enumeration for tiny instances (the paper's
//!   850-million-solution optimality probe);
//! * [`incremental`] — rescheduling after forecast changes;
//! * [`mod@scenario`] — intra-day scenario generator for the Figure 6
//!   experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod cost;
pub mod evolutionary;
pub mod exhaustive;
pub mod greedy;
pub mod incremental;
pub mod problem;
pub mod scenario;
pub mod solution;

pub use anneal::{AnnealingScheduler, HybridScheduler};
pub use cost::{evaluate, CostBreakdown};
pub use evolutionary::{EaConfig, EvolutionaryScheduler};
pub use exhaustive::{search_space_size, ExhaustiveScheduler};
pub use greedy::GreedyScheduler;
pub use incremental::reschedule;
pub use problem::{MarketPrices, SchedulingProblem};
pub use scenario::{scenario, ScenarioConfig};
pub use solution::{Budget, Placement, ScheduleResult, Solution, TrajectoryPoint};
