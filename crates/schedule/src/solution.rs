//! Candidate schedules.
//!
//! A [`Solution`] fixes, for every offer, a start slot inside the offer's
//! start window and a per-slot *fraction* of the slot's energy range.
//! Using fractions (rather than raw energies) means every representable
//! solution satisfies the flex-offer constraints by construction — the
//! search algorithms can recombine and mutate freely.

use crate::cost::CostBreakdown;
use crate::problem::SchedulingProblem;
use mirabel_core::{FlexOffer, ScheduledFlexOffer, TimeSlot};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One offer's resolved flexibility.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Chosen start slot.
    pub start: TimeSlot,
    /// Per-profile-slot fraction in `[0, 1]` between the slot's min and
    /// max energy.
    pub fractions: Vec<f64>,
}

impl Clone for Placement {
    fn clone(&self) -> Placement {
        Placement {
            start: self.start,
            fractions: self.fractions.clone(),
        }
    }

    /// Buffer-reusing `clone_from` (the derive would fall back to a
    /// fresh allocation): hot paths snapshot best-so-far solutions with
    /// `clone_from`, which must not allocate once capacity exists.
    fn clone_from(&mut self, source: &Placement) {
        self.start = source.start;
        self.fractions.clear();
        self.fractions.extend_from_slice(&source.fractions);
    }
}

impl Placement {
    /// Minimum-energy placement at the offer's earliest start.
    pub fn baseline(offer: &FlexOffer) -> Placement {
        Placement {
            start: offer.earliest_start(),
            fractions: vec![0.0; offer.duration() as usize],
        }
    }

    /// Uniformly random placement.
    pub fn random(offer: &FlexOffer, rng: &mut StdRng) -> Placement {
        let tf = offer.time_flexibility();
        let shift = if tf == 0 { 0 } else { rng.gen_range(0..=tf) };
        Placement {
            start: offer.earliest_start() + shift,
            fractions: (0..offer.duration())
                .map(|_| rng.gen_range(0.0..=1.0))
                .collect(),
        }
    }

    /// Materialize into a [`ScheduledFlexOffer`].
    pub fn to_schedule(&self, offer: &FlexOffer) -> ScheduledFlexOffer {
        ScheduledFlexOffer {
            offer_id: offer.id(),
            start: self.start,
            slot_energies: offer
                .profile()
                .slot_ranges()
                .zip(&self.fractions)
                .map(|(r, &f)| r.lerp(f))
                .collect(),
        }
    }

    /// Clamp the placement into the offer's constraints (used after
    /// mutation).
    pub fn repair(&mut self, offer: &FlexOffer) {
        if self.start < offer.earliest_start() {
            self.start = offer.earliest_start();
        }
        if self.start > offer.latest_start() {
            self.start = offer.latest_start();
        }
        self.fractions.resize(offer.duration() as usize, 0.0);
        for f in &mut self.fractions {
            *f = f.clamp(0.0, 1.0);
        }
    }
}

/// Shared single-offer neighbor move (annealing neighbors, greedy
/// polish): with probability `p_shift` — and available flexibility —
/// shift the start by up to ±`time_flexibility/4` slots, otherwise
/// jitter one random fraction by ±`jitter`; always repaired back into
/// the offer's constraints.
pub(crate) fn jitter_move(
    g: &mut Placement,
    offer: &FlexOffer,
    rng: &mut StdRng,
    p_shift: f64,
    jitter: f64,
) {
    if offer.time_flexibility() > 0 && rng.gen_bool(p_shift) {
        let span = (offer.time_flexibility() / 4).max(1) as i64;
        g.start = mirabel_core::TimeSlot(g.start.index() + rng.gen_range(-span..=span));
    } else {
        let k = rng.gen_range(0..g.fractions.len());
        g.fractions[k] += rng.gen_range(-jitter..jitter);
    }
    g.repair(offer);
}

/// A complete candidate schedule: one placement per problem offer, in the
/// problem's offer order.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Placements aligned with `problem.offers`.
    pub placements: Vec<Placement>,
}

impl Clone for Solution {
    fn clone(&self) -> Solution {
        Solution {
            placements: self.placements.clone(),
        }
    }

    /// `Vec::clone_from` reuses the outer buffer and calls
    /// [`Placement::clone_from`] element-wise, so snapshotting a
    /// best-so-far solution is allocation-free at steady state.
    fn clone_from(&mut self, source: &Solution) {
        self.placements.clone_from(&source.placements);
    }
}

impl Solution {
    /// All offers at earliest start, minimum energy (the open-contract
    /// world without scheduling).
    pub fn baseline(problem: &SchedulingProblem) -> Solution {
        Solution {
            placements: problem.offers.iter().map(Placement::baseline).collect(),
        }
    }

    /// Uniformly random solution.
    pub fn random(problem: &SchedulingProblem, rng: &mut StdRng) -> Solution {
        Solution {
            placements: problem
                .offers
                .iter()
                .map(|o| Placement::random(o, rng))
                .collect(),
        }
    }

    /// Materialize all placements.
    pub fn to_schedules(&self, problem: &SchedulingProblem) -> Vec<ScheduledFlexOffer> {
        self.placements
            .iter()
            .zip(&problem.offers)
            .map(|(p, o)| p.to_schedule(o))
            .collect()
    }

    /// Check every placement against its offer.
    pub fn is_feasible(&self, problem: &SchedulingProblem) -> bool {
        self.placements.len() == problem.offers.len()
            && self
                .placements
                .iter()
                .zip(&problem.offers)
                .all(|(p, o)| p.to_schedule(o).validate_against(o, 1e-9).is_ok())
    }
}

/// Scheduling budget: evaluation cap and optional wall-clock cap.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum cost evaluations (candidate scorings count too).
    pub max_evaluations: usize,
    /// Optional wall-clock limit.
    pub max_time: Option<Duration>,
}

impl Budget {
    /// Evaluation-count budget (deterministic; used in tests).
    pub fn evaluations(n: usize) -> Budget {
        Budget {
            max_evaluations: n,
            max_time: None,
        }
    }

    /// Wall-clock budget.
    pub fn time(d: Duration) -> Budget {
        Budget {
            max_evaluations: usize::MAX,
            max_time: Some(d),
        }
    }
}

/// One point of the best-cost-so-far trajectory (the Figure 6 curves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Wall-clock time since the scheduler started.
    pub elapsed: Duration,
    /// Cost evaluations consumed so far.
    pub evaluations: usize,
    /// Best total cost found so far (EUR).
    pub best_cost: f64,
}

/// Output of a scheduling run.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Best solution found.
    pub solution: Solution,
    /// Cost breakdown of the best solution.
    pub cost: CostBreakdown,
    /// Number of full cost evaluations.
    pub evaluations: usize,
    /// Improvement trajectory.
    pub trajectory: Vec<TrajectoryPoint>,
}

/// Shared bookkeeping for all schedulers: budget enforcement, evaluation
/// counting and best-cost trajectory recording.
#[derive(Debug)]
pub(crate) struct Recorder {
    budget: Budget,
    start: std::time::Instant,
    evaluations: usize,
    best_cost: f64,
    trajectory: Vec<TrajectoryPoint>,
}

impl Recorder {
    pub(crate) fn new(budget: Budget) -> Recorder {
        Recorder {
            budget,
            start: std::time::Instant::now(),
            evaluations: 0,
            best_cost: f64::INFINITY,
            trajectory: Vec::new(),
        }
    }

    /// Count one evaluation without a cost observation (candidate scans).
    pub(crate) fn tick(&mut self) {
        self.evaluations += 1;
    }

    /// Count one evaluation of a complete solution and update the
    /// trajectory if it improves on the best so far.
    pub(crate) fn record(&mut self, cost: f64) {
        self.evaluations += 1;
        if cost < self.best_cost {
            self.best_cost = cost;
            self.trajectory.push(TrajectoryPoint {
                elapsed: self.start.elapsed(),
                evaluations: self.evaluations,
                best_cost: cost,
            });
        }
    }

    pub(crate) fn exhausted(&self) -> bool {
        if self.evaluations >= self.budget.max_evaluations {
            return true;
        }
        if let Some(t) = self.budget.max_time {
            if self.start.elapsed() >= t {
                return true;
            }
        }
        false
    }

    pub(crate) fn finish(self, solution: Solution, cost: CostBreakdown) -> ScheduleResult {
        ScheduleResult {
            solution,
            cost,
            evaluations: self.evaluations,
            trajectory: self.trajectory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MarketPrices;
    use mirabel_core::{EnergyRange, Profile};
    use rand::SeedableRng;

    fn offer(id: u64, start: i64, tf: u32, dur: u32) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(start))
            .time_flexibility(tf)
            .profile(Profile::uniform(dur, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap()
    }

    fn problem() -> SchedulingProblem {
        SchedulingProblem::new(
            TimeSlot(0),
            vec![0.0; 48],
            vec![offer(0, 5, 10, 3), offer(1, 0, 0, 2)],
            MarketPrices::flat(48, 0.08, 0.03, 100.0),
            vec![0.2; 48],
        )
        .unwrap()
    }

    #[test]
    fn baseline_is_feasible() {
        let p = problem();
        let s = Solution::baseline(&p);
        assert!(s.is_feasible(&p));
        assert_eq!(s.placements[0].start, TimeSlot(5));
        assert_eq!(s.placements[0].fractions, vec![0.0; 3]);
    }

    #[test]
    fn random_solutions_always_feasible() {
        let p = problem();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = Solution::random(&p, &mut rng);
            assert!(s.is_feasible(&p));
        }
    }

    #[test]
    fn placement_to_schedule_lerps() {
        let o = offer(0, 5, 10, 2);
        let pl = Placement {
            start: TimeSlot(7),
            fractions: vec![0.0, 1.0],
        };
        let s = pl.to_schedule(&o);
        assert_eq!(s.start, TimeSlot(7));
        assert!((s.slot_energies[0].kwh() - 1.0).abs() < 1e-12);
        assert!((s.slot_energies[1].kwh() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn repair_clamps_everything() {
        let o = offer(0, 5, 10, 3);
        let mut pl = Placement {
            start: TimeSlot(100),
            fractions: vec![2.0, -1.0],
        };
        pl.repair(&o);
        assert_eq!(pl.start, TimeSlot(15));
        assert_eq!(pl.fractions.len(), 3);
        assert!(pl.fractions.iter().all(|f| (0.0..=1.0).contains(f)));
        let mut early = Placement {
            start: TimeSlot(0),
            fractions: vec![0.5; 3],
        };
        early.repair(&o);
        assert_eq!(early.start, TimeSlot(5));
    }

    #[test]
    fn infeasible_detected() {
        let p = problem();
        let mut s = Solution::baseline(&p);
        s.placements[0].start = TimeSlot(99);
        assert!(!s.is_feasible(&p));
        s.placements.pop();
        assert!(!s.is_feasible(&p));
    }
}
