//! Exhaustive optimality probe (paper §6).
//!
//! "Only if a few flex-offers need to be scheduled or if there are no
//! flex-offer energy constraints, it is possible to find the true optimum.
//! In a preliminary experiment with 10 flex-offers without energy
//! constraints it took almost three hours to explore all (almost 850
//! million) sensible solutions."
//!
//! [`search_space_size`] reports the start-combination count
//! `Π (tf_j + 1)`; [`ExhaustiveScheduler`] enumerates it when it is small
//! enough, choosing per-slot energies by joint water-filling (exact when
//! offers carry no energy flexibility, as in the paper's probe).

use crate::cost::evaluate;
use crate::problem::SchedulingProblem;
use crate::solution::{Budget, Placement, Recorder, ScheduleResult, Solution};
use mirabel_core::OfferKind;

/// Number of start-time combinations, as f64 (overflows u64 quickly).
pub fn search_space_size(problem: &SchedulingProblem) -> f64 {
    problem
        .offers
        .iter()
        .map(|o| o.time_flexibility() as f64 + 1.0)
        .product()
}

/// Exact enumerator for tiny instances.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveScheduler {
    /// Refuse to enumerate more than this many combinations.
    pub max_combinations: f64,
}

impl Default for ExhaustiveScheduler {
    fn default() -> ExhaustiveScheduler {
        ExhaustiveScheduler {
            max_combinations: 5e6,
        }
    }
}

impl ExhaustiveScheduler {
    /// Given fixed start shifts, choose per-slot energies by joint
    /// water-filling: per horizon slot, the total adjustable energy is
    /// moved toward zero residual and distributed over the covering
    /// offers proportionally to their range widths. Exact when no offer
    /// has energy flexibility.
    fn fill_energies(problem: &SchedulingProblem, shifts: &[u32]) -> Solution {
        let h = problem.horizon();
        // Residual with every offer at minimum energy.
        let mut residual = problem.baseline_imbalance.clone();
        for (j, offer) in problem.offers.iter().enumerate() {
            let sign = offer.demand_sign();
            let base = problem.slot_index(offer.earliest_start() + shifts[j]);
            for (k, r) in offer.profile().slot_ranges().enumerate() {
                residual[base + k] += sign * r.min().kwh();
            }
        }
        // Adjustable width per slot, split by kind.
        let mut cons_width = vec![0.0f64; h];
        let mut prod_width = vec![0.0f64; h];
        for (j, offer) in problem.offers.iter().enumerate() {
            let base = problem.slot_index(offer.earliest_start() + shifts[j]);
            for (k, r) in offer.profile().slot_ranges().enumerate() {
                let w = (r.max() - r.min()).kwh();
                match offer.kind() {
                    OfferKind::Consumption => cons_width[base + k] += w,
                    OfferKind::Production => prod_width[base + k] += w,
                }
            }
        }
        // Per-slot need: positive -> consume more, negative -> produce more.
        let need: Vec<f64> = residual
            .iter()
            .enumerate()
            .map(|(t, &r)| (-r).clamp(-prod_width[t], cons_width[t]))
            .collect();

        let placements = problem
            .offers
            .iter()
            .enumerate()
            .map(|(j, offer)| {
                let base = problem.slot_index(offer.earliest_start() + shifts[j]);
                let fractions = offer
                    .profile()
                    .slot_ranges()
                    .enumerate()
                    .map(|(k, r)| {
                        let t = base + k;
                        let w = (r.max() - r.min()).kwh();
                        if w <= 0.0 {
                            return 0.0;
                        }
                        match offer.kind() {
                            OfferKind::Consumption if need[t] > 0.0 => {
                                (need[t] / cons_width[t]).clamp(0.0, 1.0)
                            }
                            OfferKind::Production if need[t] < 0.0 => {
                                (-need[t] / prod_width[t]).clamp(0.0, 1.0)
                            }
                            _ => 0.0,
                        }
                    })
                    .collect();
                Placement {
                    start: offer.earliest_start() + shifts[j],
                    fractions,
                }
            })
            .collect();
        Solution { placements }
    }

    /// Enumerate every start combination. Returns `None` when the space
    /// exceeds [`ExhaustiveScheduler::max_combinations`].
    pub fn run(&self, problem: &SchedulingProblem) -> Option<ScheduleResult> {
        let size = search_space_size(problem);
        if size > self.max_combinations {
            return None;
        }
        let mut recorder = Recorder::new(Budget::evaluations(usize::MAX));
        let n = problem.offers.len();
        let mut shifts = vec![0u32; n];
        let mut best: Option<(Solution, f64)> = None;
        loop {
            let candidate = Self::fill_energies(problem, &shifts);
            let cost = evaluate(problem, &candidate).total();
            recorder.record(cost);
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((candidate, cost));
            }
            // odometer increment
            let mut i = 0;
            loop {
                if i == n {
                    let (solution, _) = best.expect("non-empty enumeration");
                    let cost = evaluate(problem, &solution);
                    return Some(recorder.finish(solution, cost));
                }
                if shifts[i] < problem.offers[i].time_flexibility() {
                    shifts[i] += 1;
                    break;
                }
                shifts[i] = 0;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyScheduler;
    use crate::problem::MarketPrices;
    use mirabel_core::{EnergyRange, FlexOffer, Profile, TimeSlot};

    fn fixed_offer(id: u64, start: i64, tf: u32, dur: u32, kwh: f64) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(start))
            .time_flexibility(tf)
            .profile(Profile::uniform(dur, EnergyRange::fixed(kwh)))
            .build()
            .unwrap()
    }

    fn tiny_problem() -> SchedulingProblem {
        let mut imbalance = vec![0.0; 16];
        imbalance[3] = -2.0;
        imbalance[4] = -2.0;
        imbalance[10] = -1.0;
        SchedulingProblem::new(
            TimeSlot(0),
            imbalance,
            vec![
                fixed_offer(0, 0, 10, 2, 2.0),
                fixed_offer(1, 0, 12, 1, 1.0),
                fixed_offer(2, 0, 8, 1, 0.5),
            ],
            MarketPrices::flat(16, 1.0, 0.0, 0.0),
            vec![0.2; 16],
        )
        .unwrap()
    }

    #[test]
    fn space_size_is_product() {
        let p = tiny_problem();
        assert_eq!(search_space_size(&p), 11.0 * 13.0 * 9.0);
    }

    #[test]
    fn refuses_oversized_spaces() {
        let p = tiny_problem();
        let s = ExhaustiveScheduler {
            max_combinations: 10.0,
        };
        assert!(s.run(&p).is_none());
    }

    #[test]
    fn finds_true_optimum_on_fixed_energy_instance() {
        let p = tiny_problem();
        let exact = ExhaustiveScheduler::default().run(&p).unwrap();
        // The two big offers fit the surplus exactly: optimum places the
        // 2-kWh consumer at slots 3-4 and the 1-kWh at slot 10.
        assert_eq!(exact.solution.placements[0].start, TimeSlot(3));
        assert_eq!(exact.solution.placements[1].start, TimeSlot(10));
        assert!(exact.solution.is_feasible(&p));
        assert_eq!(exact.evaluations, 11 * 13 * 9);
    }

    #[test]
    fn heuristics_bounded_below_by_optimum() {
        let p = tiny_problem();
        let exact = ExhaustiveScheduler::default().run(&p).unwrap();
        let greedy = GreedyScheduler.run(&p, Budget::evaluations(10_000), 1);
        assert!(greedy.cost.total() >= exact.cost.total() - 1e-9);
        // On this easy instance greedy should actually reach the optimum.
        assert!((greedy.cost.total() - exact.cost.total()).abs() < 1e-6);
    }

    #[test]
    fn water_filling_exact_without_energy_flexibility() {
        // With degenerate ranges, fill_energies leaves all fractions 0.
        let p = tiny_problem();
        let s = ExhaustiveScheduler::fill_energies(&p, &[0, 0, 0]);
        for pl in &s.placements {
            assert!(pl.fractions.iter().all(|&f| f == 0.0));
        }
    }

    #[test]
    fn paper_scale_space_reported_not_enumerated() {
        // Ten offers with ~7.7 slots of average flexibility ≈ 8.5e8
        // combinations — the paper's three-hour probe. We only verify the
        // count and that the enumerator declines it.
        let offers: Vec<FlexOffer> = (0..10).map(|i| fixed_offer(i, 0, 7, 1, 1.0)).collect();
        let p = SchedulingProblem::new(
            TimeSlot(0),
            vec![0.0; 16],
            offers,
            MarketPrices::flat(16, 1.0, 0.0, 0.0),
            vec![0.2; 16],
        )
        .unwrap();
        let size = search_space_size(&p);
        assert_eq!(size, 8f64.powi(10)); // (tf+1)^10 ≈ 1.07e9
        assert!(ExhaustiveScheduler::default().run(&p).is_none());
    }
}
