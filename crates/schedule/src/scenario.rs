//! Intra-day scheduling scenario generator.
//!
//! The Figure 6 experiment runs "four different intra-day scheduling
//! scenarios with 10, 100, 1000 and 10000 aggregated flex-offers".
//! The concrete instances are not published; this generator produces
//! equivalent ones: a 24-hour horizon, a non-flexible demand-minus-RES
//! baseline whose magnitude scales with the flexible energy in play,
//! peak-weighted imbalance penalties and day/night market prices.

use crate::problem::{MarketPrices, SchedulingProblem};
use mirabel_core::{EnergyRange, FlexOffer, OfferKind, Price, Profile, Slice, TimeSlot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Number of (aggregated) flex-offers.
    pub offer_count: usize,
    /// Horizon length in slots (default 96 = one day).
    pub horizon: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of production offers.
    pub production_fraction: f64,
    /// Mean per-slot energy of an offer (kWh).
    pub mean_offer_energy: f64,
    /// Relative width of per-slot energy flexibility.
    pub energy_flex: f64,
}

impl Default for ScenarioConfig {
    fn default() -> ScenarioConfig {
        ScenarioConfig {
            offer_count: 100,
            horizon: 96,
            seed: 0,
            production_fraction: 0.15,
            mean_offer_energy: 3.0,
            energy_flex: 0.3,
        }
    }
}

/// Build a scheduling problem from the config.
pub fn scenario(cfg: ScenarioConfig) -> SchedulingProblem {
    assert!(cfg.horizon >= 8, "horizon too short");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let h = cfg.horizon;
    let start = TimeSlot(0);

    // Flex-offers: short profiles placed anywhere inside the day with
    // whatever time flexibility still fits.
    let mut offers = Vec::with_capacity(cfg.offer_count);
    let mut total_flexible_energy = 0.0;
    for id in 0..cfg.offer_count {
        let slices = rng.gen_range(1..=3u32);
        let mut profile_slices = Vec::with_capacity(slices as usize);
        for _ in 0..slices {
            let dur = rng.gen_range(1..=3u32);
            let base = rng.gen_range(0.3..=2.0 * cfg.mean_offer_energy - 0.3);
            let width = base * rng.gen_range(0.0..=cfg.energy_flex);
            profile_slices.push(Slice {
                duration: dur,
                energy: EnergyRange::new(base, base + width).expect("ordered"),
            });
        }
        let profile = Profile::new(profile_slices).expect("non-empty");
        let dur = profile.total_duration() as usize;
        let es = rng.gen_range(0..=(h - dur)) as u32;
        let max_tf = (h - dur) as u32 - es;
        let tf = if max_tf == 0 {
            0
        } else {
            rng.gen_range(0..=max_tf)
        };
        let kind = if rng.gen_bool(cfg.production_fraction) {
            OfferKind::Production
        } else {
            OfferKind::Consumption
        };
        total_flexible_energy += profile.max_total_energy().kwh();
        offers.push(
            FlexOffer::builder(id as u64, 0)
                .kind(kind)
                .earliest_start(start + es)
                .time_flexibility(tf)
                .assignment_before(start + es)
                .profile(profile)
                .unit_price(Price(rng.gen_range(0.01..=0.05)))
                .build()
                .expect("generator produces valid offers"),
        );
    }

    // Baseline imbalance: evening-peaking non-flexible demand minus a
    // midday RES bump, scaled so the flexible offers matter.
    let scale = (total_flexible_energy / h as f64).max(1.0);
    let baseline_imbalance: Vec<f64> = (0..h)
        .map(|i| {
            let x = i as f64 / h as f64;
            let demand = 0.7 + 0.5 * (2.0 * PI * (x - 0.80)).cos();
            let res = 1.4 * (-((x - 0.5) * (x - 0.5)) / 0.02).exp();
            let noise = rng.gen_range(-0.05..0.05);
            scale * (demand - res + noise)
        })
        .collect();

    // Peak-weighted penalties: evening (17:00–21:00 equivalent) costs 2×.
    let imbalance_penalty: Vec<f64> = (0..h)
        .map(|i| {
            let x = i as f64 / h as f64;
            if (0.70..0.90).contains(&x) {
                0.30
            } else {
                0.15
            }
        })
        .collect();

    // Day/night buy prices; selling always earns less than buying.
    let buy: Vec<f64> = (0..h)
        .map(|i| {
            let x = i as f64 / h as f64;
            if (0.30..0.90).contains(&x) {
                0.09
            } else {
                0.05
            }
        })
        .collect();
    let sell = vec![0.02; h];

    SchedulingProblem::new(
        start,
        baseline_imbalance,
        offers,
        MarketPrices {
            buy,
            sell,
            max_trade_per_slot: scale * 0.4,
        },
        imbalance_penalty,
    )
    .expect("scenario construction is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_config() {
        for n in [0, 10, 100] {
            let p = scenario(ScenarioConfig {
                offer_count: n,
                seed: 1,
                ..ScenarioConfig::default()
            });
            assert_eq!(p.offers.len(), n);
            assert_eq!(p.horizon(), 96);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = scenario(ScenarioConfig {
            offer_count: 50,
            seed: 9,
            ..ScenarioConfig::default()
        });
        let b = scenario(ScenarioConfig {
            offer_count: 50,
            seed: 9,
            ..ScenarioConfig::default()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn offers_fit_horizon() {
        let p = scenario(ScenarioConfig {
            offer_count: 500,
            seed: 2,
            ..ScenarioConfig::default()
        });
        for o in &p.offers {
            assert!(o.earliest_start() >= p.start);
            assert!(o.latest_start() + o.duration() <= p.end());
            o.validate().unwrap();
        }
    }

    #[test]
    fn baseline_has_both_signs() {
        // The midday RES bump should push the baseline negative somewhere,
        // the evening peak positive somewhere — otherwise shifting load in
        // time would be pointless.
        let p = scenario(ScenarioConfig {
            offer_count: 100,
            seed: 3,
            ..ScenarioConfig::default()
        });
        assert!(p.baseline_imbalance.iter().any(|&v| v > 0.0));
        assert!(p.baseline_imbalance.iter().any(|&v| v < 0.0));
    }

    #[test]
    fn peak_penalty_is_higher() {
        let p = scenario(ScenarioConfig {
            offer_count: 1,
            seed: 1,
            ..ScenarioConfig::default()
        });
        let peak = p.imbalance_penalty[(0.8 * 96.0) as usize];
        let off = p.imbalance_penalty[10];
        assert!(peak > off);
    }

    #[test]
    fn production_fraction_respected() {
        let p = scenario(ScenarioConfig {
            offer_count: 400,
            seed: 5,
            production_fraction: 0.5,
            ..ScenarioConfig::default()
        });
        let prod = p
            .offers
            .iter()
            .filter(|o| o.kind() == OfferKind::Production)
            .count();
        assert!((150..=250).contains(&prod), "production count {prod}");
    }
}
