//! Simulated-annealing scheduler and greedy/EA hybrid.
//!
//! The paper lists "implementing and testing additional scheduling
//! algorithms as well as hybridizing the existing ones" as future work
//! (§6 Research Directions); both are provided here and compared in the
//! ablation benches.

use crate::cost::evaluate;
use crate::delta::DeltaEvaluator;
use crate::evolutionary::EvolutionaryScheduler;
use crate::greedy::GreedyScheduler;
use crate::problem::SchedulingProblem;
use crate::solution::{jitter_move, Budget, Recorder, ScheduleResult, Solution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Metropolis local search over complete schedules.
#[derive(Debug, Clone, Copy)]
pub struct AnnealingScheduler {
    /// Initial temperature relative to the starting cost magnitude.
    pub initial_temp: f64,
    /// Geometric cooling factor per move.
    pub cooling: f64,
}

impl Default for AnnealingScheduler {
    fn default() -> AnnealingScheduler {
        AnnealingScheduler {
            initial_temp: 0.1,
            cooling: 0.999,
        }
    }
}

impl AnnealingScheduler {
    /// Run from a random solution until the budget is exhausted.
    ///
    /// The Metropolis loop scores every neighbor through a
    /// [`DeltaEvaluator`]: propose mutates one offer's placement in
    /// place, scoring costs O(offer duration), and a rejected move is
    /// reverted rather than a fresh `Solution` being cloned per
    /// iteration.
    pub fn run(&self, problem: &SchedulingProblem, budget: Budget, seed: u64) -> ScheduleResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut recorder = Recorder::new(budget);

        let mut eval = DeltaEvaluator::new(problem, Solution::random(problem, &mut rng));
        let mut f_cur = eval.total();
        recorder.record(f_cur);
        let mut best = eval.solution().clone();
        let mut f_best = f_cur;
        let scale = f_cur.abs().max(1.0);
        let mut temp = self.initial_temp * scale;

        while !recorder.exhausted() && !problem.offers.is_empty() {
            // Neighbor: mutate one random offer's placement.
            let j = rng.gen_range(0..problem.offers.len());
            let f_cand = eval.propose(j, |g, offer| jitter_move(g, offer, &mut rng, 0.6, 0.3));
            recorder.record(f_cand);
            let accept = f_cand <= f_cur
                || rng.gen_bool((((f_cur - f_cand) / temp.max(1e-12)).exp()).clamp(0.0, 1.0));
            if accept {
                f_cur = f_cand;
                if f_cur < f_best {
                    f_best = f_cur;
                    best.clone_from(eval.solution());
                }
            } else {
                eval.revert();
            }
            temp *= self.cooling;
        }

        let cost = evaluate(problem, &best);
        let _ = f_best;
        recorder.finish(best, cost)
    }
}

/// Hybrid scheduler: greedy constructions seed the EA population.
#[derive(Debug, Clone, Copy, Default)]
pub struct HybridScheduler {
    /// Inner EA configuration.
    pub ea: EvolutionaryScheduler,
}

impl HybridScheduler {
    /// Spend ~20 % of the budget on greedy constructions, then hand the
    /// best constructions to the EA as seeds.
    pub fn run(&self, problem: &SchedulingProblem, budget: Budget, seed: u64) -> ScheduleResult {
        let greedy_budget = Budget {
            max_evaluations: (budget.max_evaluations / 5).max(1),
            max_time: budget.max_time.map(|t| t / 5),
        };
        let g = GreedyScheduler.run(problem, greedy_budget, seed);
        let remaining = Budget {
            max_evaluations: budget.max_evaluations.saturating_sub(g.evaluations).max(1),
            max_time: budget.max_time.map(|t| t.saturating_sub(t / 5)),
        };
        let mut result = self.ea.run_seeded(
            problem,
            remaining,
            seed ^ 0x9e37_79b9,
            vec![g.solution.clone()],
        );
        // The hybrid can never be worse than its greedy seed.
        if g.cost.total() < result.cost.total() {
            result.solution = g.solution;
            result.cost = g.cost;
        }
        result.evaluations += g.evaluations;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{scenario, ScenarioConfig};

    fn small(seed: u64) -> SchedulingProblem {
        scenario(ScenarioConfig {
            offer_count: 15,
            seed,
            ..ScenarioConfig::default()
        })
    }

    #[test]
    fn annealing_improves_over_first_random() {
        let p = small(1);
        let mut rng = StdRng::seed_from_u64(2);
        let random_cost = evaluate(&p, &Solution::random(&p, &mut rng)).total();
        let r = AnnealingScheduler::default().run(&p, Budget::evaluations(4_000), 2);
        assert!(r.cost.total() <= random_cost);
        assert!(r.solution.is_feasible(&p));
    }

    #[test]
    fn annealing_empty_problem() {
        let p = scenario(ScenarioConfig {
            offer_count: 0,
            seed: 1,
            ..ScenarioConfig::default()
        });
        let r = AnnealingScheduler::default().run(&p, Budget::evaluations(50), 1);
        assert!(r.cost.total().is_finite());
    }

    #[test]
    fn hybrid_no_worse_than_its_greedy_seed() {
        let p = small(3);
        let budget = Budget::evaluations(10_000);
        // The hybrid hands 1/5 of its budget to the greedy seeding phase;
        // its structural guarantee is "never worse than that seed".
        let seed_budget = Budget::evaluations(budget.max_evaluations / 5);
        let g = GreedyScheduler.run(&p, seed_budget, 7);
        let h = HybridScheduler::default().run(&p, budget, 7);
        assert!(
            h.cost.total() <= g.cost.total() + 1e-9,
            "hybrid {} greedy seed {}",
            h.cost.total(),
            g.cost.total()
        );
        assert!(h.solution.is_feasible(&p));
    }

    #[test]
    fn hybrid_not_grossly_worse_than_pure_ea() {
        // Empirical canary, not an invariant: hybridization exists to
        // put the EA ahead of a fully random population, so the hybrid
        // landing far behind the pure EA at the same budget means the
        // greedy seeding is broken. The 5% slack absorbs parameter or
        // RNG-stream changes that legitimately jiggle the comparison.
        let p = small(3);
        let budget = Budget::evaluations(10_000);
        let ea = EvolutionaryScheduler::default().run(&p, budget, 7);
        let h = HybridScheduler::default().run(&p, budget, 7);
        // Additive slack: a multiplicative factor would invert the bound
        // for negative totals, which the cost model permits.
        assert!(
            h.cost.total() <= ea.cost.total() + 0.05 * ea.cost.total().abs() + 1e-9,
            "hybrid {} far behind pure EA {}",
            h.cost.total(),
            ea.cost.total()
        );
    }

    #[test]
    fn hybrid_counts_combined_evaluations() {
        let p = small(4);
        let h = HybridScheduler::default().run(&p, Budget::evaluations(2_000), 1);
        assert!(h.evaluations <= 2_300, "evaluations {}", h.evaluations);
    }
}
