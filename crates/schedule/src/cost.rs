//! The composed schedule cost function (paper §6).
//!
//! `total = mismatch + offers + market`, where the market transactions are
//! set per-slot in closed form: given the post-placement residual, buying
//! is profitable exactly when the buy price is below the slot's imbalance
//! penalty, and selling surplus is profitable whenever it earns more than
//! the (negative-residual) penalty it avoids — which, with non-negative
//! prices and penalties, is always.

use crate::problem::SchedulingProblem;
use crate::solution::Solution;
use serde::{Deserialize, Serialize};

/// Cost components of one evaluated schedule (EUR).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Penalized residual imbalance after market transactions.
    pub mismatch_cost: f64,
    /// Flex-offer activation cost (energy × unit price).
    pub offer_cost: f64,
    /// Net market cost: buys minus sell revenue (may be negative).
    pub market_cost: f64,
    /// Energy bought per the closed-form market policy (kWh).
    pub energy_bought: f64,
    /// Energy sold (kWh).
    pub energy_sold: f64,
}

impl CostBreakdown {
    /// Total schedule cost (EUR); "the lower the cost, the better".
    pub fn total(&self) -> f64 {
        self.mismatch_cost + self.offer_cost + self.market_cost
    }
}

/// Effective cost of one slot's residual `r` under the closed-form market
/// policy: buy when cheaper than the penalty, always sell surplus, both
/// capped at `cap`. Shared by [`evaluate`] and the greedy scheduler's
/// incremental scoring.
pub(crate) fn slot_cost(r: f64, pen: f64, buy: f64, sell: f64, cap: f64) -> f64 {
    if r > 0.0 {
        if buy < pen {
            let bought = r.min(cap);
            bought * buy + (r - bought) * pen
        } else {
            r * pen
        }
    } else if r < 0.0 {
        let sold = (-r).min(cap);
        -sold * sell + (-r - sold) * pen
    } else {
        0.0
    }
}

/// Residual imbalance per slot after applying a solution's placements
/// (before market transactions). Positive = deficit.
pub fn residual_imbalance(problem: &SchedulingProblem, solution: &Solution) -> Vec<f64> {
    let mut residual = Vec::new();
    residual_imbalance_into(problem, solution, &mut residual);
    residual
}

/// Buffer-reusing variant of [`residual_imbalance`]: clears and fills
/// `residual` in place so hot-path callers (the delta evaluator, greedy
/// restarts) avoid one heap allocation per evaluation.
pub fn residual_imbalance_into(
    problem: &SchedulingProblem,
    solution: &Solution,
    residual: &mut Vec<f64>,
) {
    residual.clear();
    residual.extend_from_slice(&problem.baseline_imbalance);
    for (placement, offer) in solution.placements.iter().zip(&problem.offers) {
        let sign = offer.demand_sign();
        let base = problem.slot_index(placement.start);
        for (k, (range, &frac)) in offer
            .profile()
            .slot_ranges()
            .zip(&placement.fractions)
            .enumerate()
        {
            residual[base + k] += sign * range.lerp(frac).kwh();
        }
    }
}

/// Evaluate a solution: place offers, trade optimally, price the residual.
pub fn evaluate(problem: &SchedulingProblem, solution: &Solution) -> CostBreakdown {
    debug_assert_eq!(solution.placements.len(), problem.offers.len());
    let residual = residual_imbalance(problem, solution);

    // Offer activation cost.
    let mut offer_cost = 0.0;
    for (placement, offer) in solution.placements.iter().zip(&problem.offers) {
        let energy: f64 = offer
            .profile()
            .slot_ranges()
            .zip(&placement.fractions)
            .map(|(r, &f)| r.lerp(f).kwh())
            .sum();
        offer_cost += energy * offer.unit_price().eur();
    }

    // Closed-form per-slot market transactions + residual pricing.
    let cap = problem.prices.max_trade_per_slot;
    let mut mismatch_cost = 0.0;
    let mut market_cost = 0.0;
    let mut energy_bought = 0.0;
    let mut energy_sold = 0.0;
    for (i, &r) in residual.iter().enumerate() {
        let pen = problem.imbalance_penalty[i];
        if r > 0.0 {
            // Deficit: buy if cheaper than the penalty.
            let buy_price = problem.prices.buy[i];
            let bought = if buy_price < pen { r.min(cap) } else { 0.0 };
            energy_bought += bought;
            market_cost += bought * buy_price;
            mismatch_cost += (r - bought) * pen;
        } else if r < 0.0 {
            // Surplus: selling earns revenue and avoids the penalty.
            let sell_price = problem.prices.sell[i];
            let sold = (-r).min(cap);
            energy_sold += sold;
            market_cost -= sold * sell_price;
            mismatch_cost += (-r - sold) * pen;
        }
    }

    CostBreakdown {
        mismatch_cost,
        offer_cost,
        market_cost,
        energy_bought,
        energy_sold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MarketPrices;
    use crate::solution::Placement;
    use mirabel_core::{EnergyRange, FlexOffer, Profile, TimeSlot};

    fn consumption(id: u64, start: i64, tf: u32, dur: u32, lo: f64, hi: f64) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(start))
            .time_flexibility(tf)
            .profile(Profile::uniform(dur, EnergyRange::new(lo, hi).unwrap()))
            .unit_price(mirabel_core::Price(0.05))
            .build()
            .unwrap()
    }

    fn production(id: u64, start: i64, dur: u32, kwh: f64) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .kind(mirabel_core::OfferKind::Production)
            .earliest_start(TimeSlot(start))
            .profile(Profile::uniform(dur, EnergyRange::fixed(kwh)))
            .build()
            .unwrap()
    }

    fn empty_problem(h: usize, imbalance: Vec<f64>) -> SchedulingProblem {
        SchedulingProblem::new(
            TimeSlot(0),
            imbalance,
            vec![],
            MarketPrices::flat(h, 0.08, 0.03, 1000.0),
            vec![0.2; h],
        )
        .unwrap()
    }

    #[test]
    fn zero_imbalance_zero_cost() {
        let p = empty_problem(10, vec![0.0; 10]);
        let c = evaluate(&p, &Solution::baseline(&p));
        assert_eq!(c.total(), 0.0);
    }

    #[test]
    fn deficit_bought_when_cheaper_than_penalty() {
        let p = empty_problem(2, vec![10.0, 0.0]); // 10 kWh deficit in slot 0
        let c = evaluate(&p, &Solution::baseline(&p));
        // buy 10 at 0.08 (< 0.2 penalty)
        assert!((c.market_cost - 0.8).abs() < 1e-12);
        assert_eq!(c.mismatch_cost, 0.0);
        assert_eq!(c.energy_bought, 10.0);
        assert!((c.total() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn deficit_penalized_when_buying_expensive() {
        let mut p = empty_problem(1, vec![10.0]);
        p.prices.buy = vec![0.5]; // more than the 0.2 penalty
        let c = evaluate(&p, &Solution::baseline(&p));
        assert_eq!(c.energy_bought, 0.0);
        assert!((c.mismatch_cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn surplus_sold_for_negative_cost() {
        let p = empty_problem(1, vec![-10.0]);
        let c = evaluate(&p, &Solution::baseline(&p));
        assert_eq!(c.energy_sold, 10.0);
        assert!((c.market_cost + 0.3).abs() < 1e-12); // revenue 10*0.03
        assert_eq!(c.mismatch_cost, 0.0);
        assert!(c.total() < 0.0);
    }

    #[test]
    fn trade_cap_limits_market() {
        let mut p = empty_problem(1, vec![10.0]);
        p.prices.max_trade_per_slot = 4.0;
        let c = evaluate(&p, &Solution::baseline(&p));
        assert_eq!(c.energy_bought, 4.0);
        assert!((c.mismatch_cost - 6.0 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn consumption_soaks_surplus() {
        // Surplus of 2 kWh in slots 0..2; a flexible consumer of exactly
        // 2 kWh/slot placed there wipes the imbalance.
        let offer = consumption(0, 0, 0, 2, 2.0, 2.0);
        let p = SchedulingProblem::new(
            TimeSlot(0),
            vec![-2.0, -2.0, 0.0],
            vec![offer],
            MarketPrices::flat(3, 0.08, 0.0, 1000.0),
            vec![0.2; 3],
        )
        .unwrap();
        let s = Solution::baseline(&p);
        let r = residual_imbalance(&p, &s);
        assert_eq!(r, vec![0.0, 0.0, 0.0]);
        let c = evaluate(&p, &s);
        // only the activation cost remains: 4 kWh * 0.05
        assert!((c.total() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn production_offer_reduces_deficit() {
        let offer = production(0, 0, 1, 5.0);
        let p = SchedulingProblem::new(
            TimeSlot(0),
            vec![5.0],
            vec![offer],
            MarketPrices::flat(1, 10.0, 0.0, 1000.0), // buying prohibitive
            vec![0.2; 1],
        )
        .unwrap();
        let c = evaluate(&p, &Solution::baseline(&p));
        assert_eq!(c.mismatch_cost, 0.0);
    }

    #[test]
    fn shifting_start_moves_load() {
        let offer = consumption(0, 0, 2, 1, 3.0, 3.0);
        let p = SchedulingProblem::new(
            TimeSlot(0),
            vec![0.0, 0.0, -3.0],
            vec![offer],
            MarketPrices::flat(3, 1.0, 0.0, 0.0), // no market
            vec![0.2; 3],
        )
        .unwrap();
        // at earliest start: creates deficit at slot 0, surplus stays at 2
        let bad = Solution::baseline(&p);
        let bad_cost = evaluate(&p, &bad).total();
        // shifted to slot 2: consumption meets surplus exactly
        let good = Solution {
            placements: vec![Placement {
                start: TimeSlot(2),
                fractions: vec![0.0],
            }],
        };
        let good_cost = evaluate(&p, &good).total();
        assert!(good_cost < bad_cost, "good {good_cost} bad {bad_cost}");
        // only the activation cost remains: 3 kWh × 0.05 EUR/kWh
        assert!((good_cost - 0.15).abs() < 1e-12);
    }

    #[test]
    fn slot_cost_matches_evaluate() {
        // slot_cost (greedy's incremental scorer) must agree with the full
        // evaluation for single-slot problems.
        for &r in &[-20.0, -3.0, 0.0, 2.5, 50.0] {
            for &(pen, buy, sell, cap) in &[
                (0.2, 0.08, 0.03, 1000.0),
                (0.2, 0.5, 0.03, 1000.0),
                (0.2, 0.08, 0.03, 4.0),
            ] {
                let mut p = empty_problem(1, vec![r]);
                p.prices = MarketPrices {
                    buy: vec![buy],
                    sell: vec![sell],
                    max_trade_per_slot: cap,
                };
                p.imbalance_penalty = vec![pen];
                let c = evaluate(&p, &Solution::baseline(&p));
                let sc = slot_cost(r, pen, buy, sell, cap);
                assert!(
                    (c.total() - sc).abs() < 1e-9,
                    "r={r} pen={pen} buy={buy}: evaluate {} vs slot_cost {sc}",
                    c.total()
                );
            }
        }
    }

    #[test]
    fn fraction_scales_energy_and_offer_cost() {
        let offer = consumption(0, 0, 0, 1, 0.0, 10.0);
        let p = SchedulingProblem::new(
            TimeSlot(0),
            vec![0.0],
            vec![offer],
            MarketPrices::flat(1, 0.08, 0.03, 1000.0),
            vec![0.2; 1],
        )
        .unwrap();
        let half = Solution {
            placements: vec![Placement {
                start: TimeSlot(0),
                fractions: vec![0.5],
            }],
        };
        let c = evaluate(&p, &half);
        // 5 kWh consumed: deficit 5 bought at 0.08 = 0.4; activation 5*0.05
        assert!((c.offer_cost - 0.25).abs() < 1e-12);
        assert!((c.market_cost - 0.4).abs() < 1e-12);
    }
}
