//! O(move)-time incremental schedule scoring.
//!
//! Every metaheuristic in this crate searches by perturbing *one offer at
//! a time*, yet the reference [`evaluate`] rebuilds
//! the entire residual-imbalance vector and re-prices every horizon slot
//! per candidate — O(offers × duration + horizon) work for a move that
//! only disturbs the handful of slots inside one offer's window. The paper
//! (§6/§8) asks for schedules that are "incrementally maintained if
//! forecast values change over time"; at BRP scale (thousands of
//! aggregated offers, millions of users behind them) per-move cost must
//! not grow with the offer count.
//!
//! [`DeltaEvaluator`] owns the residual vector, the per-slot market/
//! mismatch cost, and the per-offer activation cost as mutable state. A
//! move — replacing one offer's [`Placement`] — touches only the slots in
//! the union of the old and new placement windows, so rescoring costs
//! O(offer duration), independent of how many other offers exist. One
//! level of undo ([`DeltaEvaluator::revert`]) makes the propose →
//! score → accept/reject loop allocation-free: the scratch placement and
//! the touched-slot log are reused across moves.
//!
//! In debug builds every committed move is cross-checked against the full
//! [`evaluate`]; the release hot path trusts the
//! delta bookkeeping (drift is bounded by one f64 rounding per touched
//! slot per move and verified to stay under 1e-6 by the property tests).
//!
//! ## Event-driven replanning
//!
//! Beyond single-offer moves, the evaluator supports the event-driven
//! replanning pipeline (forecast pub/sub event → [`rebase`] → scoped
//! repair):
//!
//! * [`DeltaEvaluator::rebase`] re-prices *only* the slots whose forecast
//!   baseline moved — O(changed slots), not O(horizon + offers) — so a
//!   pub/sub notification touching a handful of slots never pays a full
//!   [`resync`](DeltaEvaluator::resync);
//! * [`DeltaEvaluator::new_owned`] builds an evaluator that owns its
//!   problem, which is what lets a BRP node keep a *live* evaluator
//!   across planning cycles and rebase it in place;
//! * [`DeltaEvaluator::fork`] cheaply clones the cached cost state
//!   (sharing the problem by reference) for parallel multi-start repair
//!   chains — per-move state is thread-local by construction;
//! * [`DeltaEvaluator::adopt_scoped`] merges a winning chain's placements
//!   back into the live evaluator, move by debug-checked move.
//!
//! [`rebase`]: DeltaEvaluator::rebase

use crate::cost::{evaluate, residual_imbalance_into, slot_cost, CostBreakdown};
use crate::problem::SchedulingProblem;
use crate::solution::{Placement, Recorder, Solution};
use mirabel_core::FlexOffer;
use rand::rngs::StdRng;
use rand::Rng;
use std::borrow::Cow;

/// Undo log for the last uncommitted move.
#[derive(Debug)]
struct Undo {
    offer_idx: usize,
    old_placement: Placement,
    old_offer_cost: f64,
    old_total: f64,
    /// First-touch snapshots: `(slot, residual, slot_cost)`.
    touched: Vec<(usize, f64, f64)>,
    active: bool,
}

/// Incremental evaluator: mutable cost state plus O(move) updates.
///
/// ```
/// use mirabel_schedule::{scenario, DeltaEvaluator, ScenarioConfig, Solution};
/// use mirabel_schedule::cost::evaluate;
///
/// let p = scenario(ScenarioConfig { offer_count: 20, seed: 1, ..Default::default() });
/// let mut eval = DeltaEvaluator::new(&p, Solution::baseline(&p));
/// let before = eval.total();
/// // Propose a move on offer 3: bump every fraction to 1.0.
/// let after = eval.propose(3, |g, _offer| g.fractions.iter_mut().for_each(|f| *f = 1.0));
/// assert!((after - evaluate(&p, eval.solution()).total()).abs() < 1e-9);
/// eval.revert();
/// assert!((eval.total() - before).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct DeltaEvaluator<'p> {
    /// Borrowed for search-loop evaluators, owned for live (cross-cycle)
    /// evaluators that must survive forecast rebases.
    problem: Cow<'p, SchedulingProblem>,
    solution: Solution,
    /// Residual imbalance per slot (before market transactions).
    residual: Vec<f64>,
    /// Per-slot mismatch + market cost of `residual` under the
    /// closed-form trading policy.
    slot_costs: Vec<f64>,
    /// Per-offer activation cost (energy × unit price).
    offer_costs: Vec<f64>,
    /// Running total: Σ slot_costs + Σ offer_costs.
    total: f64,
    /// Scratch placement reused by [`propose`](Self::propose).
    scratch: Placement,
    undo: Undo,
}

impl<'p> DeltaEvaluator<'p> {
    /// Build the evaluator state from a complete solution. This is the
    /// only O(offers × duration + horizon) entry point; every subsequent
    /// move costs O(offer duration).
    pub fn new(problem: &'p SchedulingProblem, solution: Solution) -> DeltaEvaluator<'p> {
        DeltaEvaluator::from_cow(Cow::Borrowed(problem), solution)
    }

    /// Like [`new`](Self::new), but the evaluator *owns* the problem, so
    /// it can outlive the caller's scope (`DeltaEvaluator<'static>`) and
    /// be [`rebase`](Self::rebase)d without cloning. This is the shape a
    /// BRP node keeps alive between planning cycles.
    pub fn new_owned(problem: SchedulingProblem, solution: Solution) -> DeltaEvaluator<'static> {
        DeltaEvaluator::from_cow(Cow::Owned(problem), solution)
    }

    fn from_cow(problem: Cow<'p, SchedulingProblem>, solution: Solution) -> DeltaEvaluator<'p> {
        assert_eq!(
            solution.placements.len(),
            problem.offers.len(),
            "solution/offer arity mismatch"
        );
        let start = problem.start;
        let mut eval = DeltaEvaluator {
            problem,
            solution,
            residual: Vec::new(),
            slot_costs: Vec::new(),
            offer_costs: Vec::new(),
            total: 0.0,
            scratch: Placement {
                start,
                fractions: Vec::new(),
            },
            undo: Undo {
                offer_idx: 0,
                old_placement: Placement {
                    start,
                    fractions: Vec::new(),
                },
                old_offer_cost: 0.0,
                old_total: 0.0,
                touched: Vec::new(),
                active: false,
            },
        };
        eval.resync();
        eval
    }

    /// Recompute all cached state from scratch (also clears the undo
    /// log). Useful to squash accumulated float drift on very long runs;
    /// costs the same as [`new`](Self::new).
    pub fn resync(&mut self) {
        residual_imbalance_into(&self.problem, &self.solution, &mut self.residual);
        let p: &SchedulingProblem = &self.problem;
        self.slot_costs.clear();
        self.slot_costs
            .extend(self.residual.iter().enumerate().map(|(i, &r)| {
                slot_cost(
                    r,
                    p.imbalance_penalty[i],
                    p.prices.buy[i],
                    p.prices.sell[i],
                    p.prices.max_trade_per_slot,
                )
            }));
        self.offer_costs.clear();
        self.offer_costs.extend(
            self.solution
                .placements
                .iter()
                .zip(&p.offers)
                .map(|(pl, o)| activation_cost(pl, o)),
        );
        self.total = self.slot_costs.iter().sum::<f64>() + self.offer_costs.iter().sum::<f64>();
        self.undo.active = false;
    }

    /// Current total schedule cost (EUR), identical to
    /// `evaluate(problem, solution).total()` up to float drift.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The problem being evaluated.
    pub fn problem(&self) -> &SchedulingProblem {
        &self.problem
    }

    /// Cheap clone of the cached cost state, sharing the problem by
    /// reference: copies the solution and the residual/cost vectors but
    /// performs no re-pricing. This is how parallel multi-start repair
    /// spawns K independent chains from one live evaluator — each fork's
    /// per-move state is private, so chains are embarrassingly parallel.
    pub fn fork(&self) -> DeltaEvaluator<'_> {
        let start = self.problem.start;
        DeltaEvaluator {
            problem: Cow::Borrowed(&*self.problem),
            solution: self.solution.clone(),
            residual: self.residual.clone(),
            slot_costs: self.slot_costs.clone(),
            offer_costs: self.offer_costs.clone(),
            total: self.total,
            scratch: Placement {
                start,
                fractions: Vec::new(),
            },
            undo: Undo {
                offer_idx: 0,
                old_placement: Placement {
                    start,
                    fractions: Vec::new(),
                },
                old_offer_cost: 0.0,
                old_total: 0.0,
                touched: Vec::new(),
                active: false,
            },
        }
    }

    /// Re-baseline the evaluator after a forecast update: `new_baseline`
    /// replaces the problem's baseline imbalance, and **only** the slots
    /// listed in `changed_slots` are re-priced — O(changed slots) work,
    /// independent of horizon length and offer count. This is the
    /// batched-forecast-update path: a pub/sub notification that moved a
    /// few slots must not pay a full [`resync`](Self::resync).
    ///
    /// Slots *not* listed in `changed_slots` must be unchanged in
    /// `new_baseline` (debug builds verify this). The one-level undo log
    /// is invalidated: a move proposed before the rebase can no longer be
    /// reverted. Returns the new total cost.
    ///
    /// On a borrowed evaluator the first rebase clones the problem
    /// (`Cow::to_mut`); build live evaluators with
    /// [`new_owned`](Self::new_owned) to make every rebase clone-free.
    pub fn rebase(&mut self, new_baseline: &[f64], changed_slots: &[usize]) -> f64 {
        assert_eq!(
            new_baseline.len(),
            self.problem.horizon(),
            "rebase baseline/horizon arity mismatch"
        );
        #[cfg(debug_assertions)]
        for (i, (new, old)) in new_baseline
            .iter()
            .zip(&self.problem.baseline_imbalance)
            .enumerate()
        {
            debug_assert!(
                new == old || changed_slots.contains(&i),
                "slot {i} changed ({old} -> {new}) but is not in changed_slots"
            );
        }
        self.undo.active = false;
        let problem = self.problem.to_mut();
        for &t in changed_slots {
            let delta = new_baseline[t] - problem.baseline_imbalance[t];
            problem.baseline_imbalance[t] = new_baseline[t];
            self.residual[t] += delta;
            let sc = slot_cost(
                self.residual[t],
                problem.imbalance_penalty[t],
                problem.prices.buy[t],
                problem.prices.sell[t],
                problem.prices.max_trade_per_slot,
            );
            self.total += sc - self.slot_costs[t];
            self.slot_costs[t] = sc;
        }
        #[cfg(debug_assertions)]
        self.assert_in_sync();
        self.total
    }

    /// Append a new offer to the live problem with the given placement —
    /// O(offer duration): only the placement's slots are re-priced,
    /// nothing is reconstructed. Returns the new offer's index.
    ///
    /// This is what lets a node fold an *offer-pool* delta (a new macro
    /// offer trickling in from a lower hierarchy level) into a live plan
    /// without rebuilding the scheduling problem. The one-level undo log
    /// is invalidated. On a borrowed evaluator the first mutation clones
    /// the problem (`Cow::to_mut`); live evaluators built with
    /// [`new_owned`](Self::new_owned) mutate in place.
    ///
    /// # Panics
    /// Panics if the offer does not fit the horizon or the placement
    /// does not satisfy the offer's constraints.
    pub fn insert_offer(&mut self, offer: FlexOffer, placement: Placement) -> usize {
        self.undo.active = false;
        let problem = self.problem.to_mut();
        assert!(
            offer.earliest_start() >= problem.start
                && problem.start + problem.baseline_imbalance.len() as u32
                    >= offer.latest_start() + offer.duration(),
            "inserted offer does not fit the horizon"
        );
        assert!(
            placement.start >= offer.earliest_start() && placement.start <= offer.latest_start(),
            "placement start outside the offer's window"
        );
        assert_eq!(
            placement.fractions.len(),
            offer.duration() as usize,
            "placement/profile arity mismatch"
        );
        let sign = offer.demand_sign();
        let base = (placement.start - problem.start) as usize;
        for (k, (range, &frac)) in offer
            .profile()
            .slot_ranges()
            .zip(&placement.fractions)
            .enumerate()
        {
            let t = base + k;
            self.residual[t] += sign * range.lerp(frac).kwh();
            let sc = slot_cost(
                self.residual[t],
                problem.imbalance_penalty[t],
                problem.prices.buy[t],
                problem.prices.sell[t],
                problem.prices.max_trade_per_slot,
            );
            self.total += sc - self.slot_costs[t];
            self.slot_costs[t] = sc;
        }
        let oc = activation_cost(&placement, &offer);
        self.total += oc;
        self.offer_costs.push(oc);
        let j = problem.offers.len();
        problem.offers.push(offer);
        self.solution.placements.push(placement);

        #[cfg(debug_assertions)]
        self.assert_in_sync();
        j
    }

    /// Remove offer `j` from the live problem — O(offer duration): its
    /// placement's energy is withdrawn, only the touched slots are
    /// re-priced. The **last** offer is swapped into index `j`
    /// (`swap_remove`), so any external index map must re-home that one
    /// entry. Returns the removed offer. The undo log is invalidated.
    pub fn remove_offer(&mut self, j: usize) -> FlexOffer {
        self.undo.active = false;
        let problem = self.problem.to_mut();
        let placement = self.solution.placements.swap_remove(j);
        let offer = problem.offers.swap_remove(j);
        let sign = offer.demand_sign();
        let base = (placement.start - problem.start) as usize;
        for (k, (range, &frac)) in offer
            .profile()
            .slot_ranges()
            .zip(&placement.fractions)
            .enumerate()
        {
            let t = base + k;
            self.residual[t] -= sign * range.lerp(frac).kwh();
            let sc = slot_cost(
                self.residual[t],
                problem.imbalance_penalty[t],
                problem.prices.buy[t],
                problem.prices.sell[t],
                problem.prices.max_trade_per_slot,
            );
            self.total += sc - self.slot_costs[t];
            self.slot_costs[t] = sc;
        }
        self.total -= self.offer_costs[j];
        self.offer_costs.swap_remove(j);

        #[cfg(debug_assertions)]
        self.assert_in_sync();
        offer
    }

    /// Consume the evaluator, yielding the problem and the solution. A
    /// borrowed problem is cloned; an owned one (the live-plan shape)
    /// moves out for free.
    pub fn into_problem_and_solution(self) -> (SchedulingProblem, Solution) {
        (self.problem.into_owned(), self.solution)
    }

    /// Merge a repaired solution back into this evaluator: for every
    /// offer index in `scope`, adopt `winner`'s placement if it differs
    /// from the current one. Each adoption is a regular debug-checked
    /// [`apply_move`](Self::apply_move) — O(scope × offer duration)
    /// total. The undo log is left cleared (a multi-move adoption cannot
    /// be reverted as a unit). Returns the new total cost.
    pub fn adopt_scoped(&mut self, winner: &Solution, scope: &[usize]) -> f64 {
        assert_eq!(
            winner.placements.len(),
            self.solution.placements.len(),
            "adopted solution arity mismatch"
        );
        for &j in scope {
            if self.solution.placements[j] != winner.placements[j] {
                self.apply_move(j, winner.placements[j].clone());
            }
        }
        self.undo.active = false;
        self.total
    }

    /// Current solution (read-only).
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// Consume the evaluator, yielding the current solution.
    pub fn into_solution(self) -> Solution {
        self.solution
    }

    /// Full cost breakdown of the current solution (O(horizon); intended
    /// for reporting once search finishes, not for the hot loop).
    pub fn breakdown(&self) -> CostBreakdown {
        evaluate(&self.problem, &self.solution)
    }

    /// Replace offer `j`'s placement, updating only the slots inside the
    /// old and new placement windows. Returns the new total cost. The
    /// previous state can be restored with [`revert`](Self::revert) until
    /// the next move is applied.
    pub fn apply_move(&mut self, j: usize, new_placement: Placement) -> f64 {
        // Split-borrow the problem (shared) away from the mutable cache
        // fields: with a Cow-held problem, `offer` borrows `self`, so the
        // cache updates below must go through disjoint field borrows.
        let p: &SchedulingProblem = &self.problem;
        let offer = &p.offers[j];
        debug_assert_eq!(
            new_placement.fractions.len(),
            offer.duration() as usize,
            "placement/profile arity mismatch"
        );
        debug_assert!(
            new_placement.start >= offer.earliest_start()
                && new_placement.start <= offer.latest_start(),
            "placement start outside the offer's window"
        );

        self.undo.offer_idx = j;
        self.undo.old_total = self.total;
        self.undo.touched.clear();
        self.undo.active = true;

        let sign = offer.demand_sign();

        // Withdraw the old placement's energy from its window…
        let old = std::mem::replace(&mut self.solution.placements[j], new_placement);
        let base = p.slot_index(old.start);
        for (k, (range, &frac)) in offer
            .profile()
            .slot_ranges()
            .zip(&old.fractions)
            .enumerate()
        {
            let t = base + k;
            snapshot(&mut self.undo, &self.residual, &self.slot_costs, t);
            self.residual[t] -= sign * range.lerp(frac).kwh();
        }

        // …deposit the new placement's energy into its window
        // (snapshots first: they must capture pre-deposit values)…
        let base = p.slot_index(self.solution.placements[j].start);
        for k in 0..offer.duration() as usize {
            snapshot(&mut self.undo, &self.residual, &self.slot_costs, base + k);
        }
        let new = &self.solution.placements[j];
        for (k, (range, &frac)) in offer
            .profile()
            .slot_ranges()
            .zip(&new.fractions)
            .enumerate()
        {
            self.residual[base + k] += sign * range.lerp(frac).kwh();
        }

        // …and re-price exactly the touched slots.
        for i in 0..self.undo.touched.len() {
            let t = self.undo.touched[i].0;
            let sc = slot_cost(
                self.residual[t],
                p.imbalance_penalty[t],
                p.prices.buy[t],
                p.prices.sell[t],
                p.prices.max_trade_per_slot,
            );
            self.total += sc - self.slot_costs[t];
            self.slot_costs[t] = sc;
        }

        let oc = activation_cost(&self.solution.placements[j], offer);
        self.undo.old_offer_cost = self.offer_costs[j];
        self.total += oc - self.offer_costs[j];
        self.offer_costs[j] = oc;
        // The placement displaced from the previous undo slot is dead;
        // recycle its buffer as propose() scratch capacity so the
        // propose/apply/revert cycle never allocates in steady state.
        let dead = std::mem::replace(&mut self.undo.old_placement, old);
        if dead.fractions.capacity() > self.scratch.fractions.capacity() {
            self.scratch = dead;
        }

        #[cfg(debug_assertions)]
        self.assert_in_sync();
        self.total
    }

    /// Allocation-free variant of [`apply_move`](Self::apply_move): copy
    /// offer `j`'s current placement into an internal scratch buffer, let
    /// `mutate` edit it (the offer is passed along for `repair`), then
    /// apply the result as a move. Returns the new total cost.
    pub fn propose(&mut self, j: usize, mutate: impl FnOnce(&mut Placement, &FlexOffer)) -> f64 {
        let mut cand = std::mem::replace(
            &mut self.scratch,
            Placement {
                start: self.problem.start,
                fractions: Vec::new(),
            },
        );
        let current = &self.solution.placements[j];
        cand.start = current.start;
        cand.fractions.clear();
        cand.fractions.extend_from_slice(&current.fractions);
        mutate(&mut cand, &self.problem.offers[j]);
        self.apply_move(j, cand)
    }

    /// Undo the last move. Panics if there is nothing to revert (each
    /// move can be reverted at most once).
    pub fn revert(&mut self) {
        assert!(self.undo.active, "revert() without a preceding move");
        self.undo.active = false;
        let j = self.undo.offer_idx;
        for &(t, r, sc) in &self.undo.touched {
            self.residual[t] = r;
            self.slot_costs[t] = sc;
        }
        self.offer_costs[j] = self.undo.old_offer_cost;
        // Swap rather than overwrite: the rejected placement becomes
        // reusable scratch capacity for the next propose().
        std::mem::swap(
            &mut self.solution.placements[j],
            &mut self.undo.old_placement,
        );
        // Restoring the saved total (instead of re-subtracting deltas)
        // makes revert drift-free.
        self.total = self.undo.old_total;

        #[cfg(debug_assertions)]
        self.assert_in_sync();
    }

    /// Debug-build cross-check: the running total must agree with the
    /// reference full evaluation.
    #[cfg(debug_assertions)]
    fn assert_in_sync(&self) {
        let reference = evaluate(&self.problem, &self.solution).total();
        let tol = 1e-6 * reference.abs().max(1.0);
        debug_assert!(
            (self.total - reference).abs() <= tol,
            "delta total {} diverged from full evaluation {}",
            self.total,
            reference
        );
    }
}

/// Record `(slot, residual, slot_cost)` the first time a move touches
/// slot `t`. Windows are a handful of slots, so the linear duplicate
/// scan beats any hashing. (Free function so [`DeltaEvaluator`] methods
/// can call it while the Cow-held problem is split-borrowed.)
#[inline]
fn snapshot(undo: &mut Undo, residual: &[f64], slot_costs: &[f64], t: usize) {
    if !undo.touched.iter().any(|&(s, _, _)| s == t) {
        undo.touched.push((t, residual[t], slot_costs[t]));
    }
}

/// Budget-guarded first-improvement hill climb over single-offer moves,
/// shared by the greedy polish, the EA's memetic refinement and
/// incremental rescheduling: propose a mutation of a random offer's
/// placement, record the candidate, keep it only if it lowers the total.
/// When `scope` is `Some`, moves are restricted to the listed offer
/// indices (the repair scope of a forecast delta); `None` searches every
/// offer. Returns the final running total.
pub(crate) fn hill_climb(
    eval: &mut DeltaEvaluator<'_>,
    recorder: &mut Recorder,
    rng: &mut StdRng,
    max_moves: usize,
    scope: Option<&[usize]>,
    mut mutate: impl FnMut(&mut Placement, &FlexOffer, &mut StdRng),
) -> f64 {
    let n = match scope {
        Some(s) => s.len(),
        None => eval.problem().offers.len(),
    };
    let mut f_cur = eval.total();
    for _ in 0..max_moves {
        if n == 0 || recorder.exhausted() {
            break;
        }
        let pick = rng.gen_range(0..n);
        let j = scope.map_or(pick, |s| s[pick]);
        let f_cand = eval.propose(j, |g, offer| mutate(g, offer, rng));
        recorder.record(f_cand);
        if f_cand < f_cur {
            f_cur = f_cand;
        } else {
            eval.revert();
        }
    }
    f_cur
}

/// Activation cost of one placement: delivered energy × unit price.
fn activation_cost(placement: &Placement, offer: &FlexOffer) -> f64 {
    let energy: f64 = offer
        .profile()
        .slot_ranges()
        .zip(&placement.fractions)
        .map(|(r, &f)| r.lerp(f).kwh())
        .sum();
    energy * offer.unit_price().eur()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{scenario, ScenarioConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn problem(n: usize, seed: u64) -> SchedulingProblem {
        scenario(ScenarioConfig {
            offer_count: n,
            seed,
            ..ScenarioConfig::default()
        })
    }

    #[test]
    fn new_matches_full_evaluation() {
        let p = problem(25, 1);
        for sol in [Solution::baseline(&p), {
            let mut rng = StdRng::seed_from_u64(2);
            Solution::random(&p, &mut rng)
        }] {
            let reference = evaluate(&p, &sol).total();
            let eval = DeltaEvaluator::new(&p, sol);
            assert!((eval.total() - reference).abs() < 1e-9);
        }
    }

    #[test]
    fn insert_offer_matches_rebuilt_evaluator() {
        let p = problem(15, 21);
        let mut eval = DeltaEvaluator::new_owned(p.clone(), Solution::baseline(&p));
        // Steal an offer shape from another scenario but give it a fresh id.
        let donor = problem(1, 22).offers[0].clone();
        let placement = Placement::baseline(&donor);
        let j = eval.insert_offer(donor.clone(), placement);
        assert_eq!(j, 15);
        assert_eq!(eval.problem().offers.len(), 16);
        let reference = evaluate(eval.problem(), eval.solution()).total();
        assert!((eval.total() - reference).abs() < 1e-9);
        // Moves on the inserted offer work like on any other.
        let after = eval.propose(j, |g, _| g.fractions.iter_mut().for_each(|f| *f = 1.0));
        assert!((after - evaluate(eval.problem(), eval.solution()).total()).abs() < 1e-9);
    }

    #[test]
    fn remove_offer_matches_rebuilt_evaluator() {
        let p = problem(12, 23);
        let mut rng = StdRng::seed_from_u64(24);
        let sol = Solution::random(&p, &mut rng);
        let mut eval = DeltaEvaluator::new_owned(p.clone(), sol);
        let removed = eval.remove_offer(3);
        assert_eq!(removed.id(), p.offers[3].id());
        // swap_remove: the former last offer now sits at index 3.
        assert_eq!(eval.problem().offers[3].id(), p.offers[11].id());
        assert_eq!(eval.problem().offers.len(), 11);
        let reference = evaluate(eval.problem(), eval.solution()).total();
        assert!((eval.total() - reference).abs() < 1e-9);
        // Removing everything leaves the baseline-only cost.
        while !eval.problem().offers.is_empty() {
            eval.remove_offer(0);
        }
        let empty_ref = evaluate(eval.problem(), eval.solution()).total();
        assert!((eval.total() - empty_ref).abs() < 1e-9);
    }

    #[test]
    fn insert_then_remove_restores_cost() {
        let p = problem(10, 25);
        let mut eval = DeltaEvaluator::new_owned(p.clone(), Solution::baseline(&p));
        let before = eval.total();
        let donor = problem(1, 26).offers[0].clone();
        let j = eval.insert_offer(donor.clone(), Placement::baseline(&donor));
        assert!(eval.total() != before || donor.profile().min_total_energy().kwh() == 0.0);
        eval.remove_offer(j);
        assert!((eval.total() - before).abs() < 1e-6);
    }

    #[test]
    fn offer_reach_bounds_the_scope() {
        let p = problem(30, 27);
        for (j, o) in p.offers.iter().enumerate() {
            let reach = crate::incremental::offer_reach(&p, o);
            // An offer is always in the scope of its own reach…
            let scope =
                crate::incremental::repair_scope(&p, &reach.clone().collect::<Vec<usize>>());
            assert!(scope.contains(&j));
            // …and never in the scope of slots outside every reach.
            assert!(reach.end <= p.horizon());
        }
    }

    #[test]
    fn apply_move_matches_full_evaluation() {
        let p = problem(20, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut eval = DeltaEvaluator::new(&p, Solution::random(&p, &mut rng));
        for _ in 0..500 {
            let j = rng.gen_range(0..p.offers.len());
            let new_p = Placement::random(&p.offers[j], &mut rng);
            let total = eval.apply_move(j, new_p);
            let reference = evaluate(&p, eval.solution()).total();
            assert!(
                (total - reference).abs() < 1e-6,
                "delta {total} vs full {reference}"
            );
        }
    }

    #[test]
    fn revert_restores_exact_state() {
        let p = problem(15, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut eval = DeltaEvaluator::new(&p, Solution::random(&p, &mut rng));
        for _ in 0..200 {
            let before_total = eval.total();
            let before_solution = eval.solution().clone();
            let j = rng.gen_range(0..p.offers.len());
            eval.apply_move(j, Placement::random(&p.offers[j], &mut rng));
            eval.revert();
            assert_eq!(eval.total(), before_total, "total must restore exactly");
            assert_eq!(eval.solution(), &before_solution);
        }
    }

    #[test]
    fn propose_equals_apply_move() {
        let p = problem(12, 7);
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        let start = Solution::baseline(&p);
        let mut a = DeltaEvaluator::new(&p, start.clone());
        let mut b = DeltaEvaluator::new(&p, start);
        for _ in 0..100 {
            let j = rng_a.gen_range(0..p.offers.len());
            let _ = rng_b.gen_range(0..p.offers.len());
            let np = Placement::random(&p.offers[j], &mut rng_a);
            let np_b = Placement::random(&p.offers[j], &mut rng_b);
            let ta = a.apply_move(j, np);
            let tb = b.propose(j, |g, _| {
                g.start = np_b.start;
                g.fractions.clear();
                g.fractions.extend_from_slice(&np_b.fractions);
            });
            assert_eq!(ta, tb);
        }
    }

    #[test]
    #[should_panic(expected = "revert() without a preceding move")]
    fn double_revert_panics() {
        let p = problem(3, 9);
        let mut eval = DeltaEvaluator::new(&p, Solution::baseline(&p));
        eval.apply_move(0, Placement::baseline(&p.offers[0]));
        eval.revert();
        eval.revert();
    }

    #[test]
    fn overlapping_windows_handled() {
        // A move that shifts an offer by one slot overlaps its own old
        // window; the first-touch snapshot must keep revert exact.
        let p = problem(10, 11);
        let j = p
            .offers
            .iter()
            .position(|o| o.time_flexibility() > 0 && o.duration() > 1)
            .expect("scenario contains a shiftable multi-slot offer");
        let mut eval = DeltaEvaluator::new(&p, Solution::baseline(&p));
        let before = eval.total();
        let mut shifted = Placement::baseline(&p.offers[j]);
        shifted.start += 1u32;
        let total = eval.apply_move(j, shifted);
        let reference = evaluate(&p, eval.solution()).total();
        assert!((total - reference).abs() < 1e-9);
        eval.revert();
        assert_eq!(eval.total(), before);
    }

    #[test]
    fn rebase_matches_fresh_evaluator() {
        let p = problem(20, 17);
        let mut rng = StdRng::seed_from_u64(18);
        let mut eval = DeltaEvaluator::new_owned(p.clone(), Solution::random(&p, &mut rng));
        // Change a scattered subset of slots.
        let changed: Vec<usize> = vec![3, 4, 5, 40, 41, 90];
        let mut new_baseline = p.baseline_imbalance.clone();
        for &t in &changed {
            new_baseline[t] += rng.gen_range(-2.0..2.0);
        }
        let total = eval.rebase(&new_baseline, &changed);
        let mut updated = p.clone();
        updated.baseline_imbalance = new_baseline;
        let reference = DeltaEvaluator::new(&updated, eval.solution().clone()).total();
        assert!(
            (total - reference).abs() < 1e-9,
            "rebase {total} vs fresh {reference}"
        );
        // Moves after a rebase still track the full evaluation.
        for _ in 0..50 {
            let j = rng.gen_range(0..updated.offers.len());
            let t = eval.apply_move(j, Placement::random(&updated.offers[j], &mut rng));
            let full = evaluate(&updated, eval.solution()).total();
            assert!((t - full).abs() < 1e-6);
        }
    }

    #[test]
    fn rebase_invalidates_undo() {
        let p = problem(5, 19);
        let mut eval = DeltaEvaluator::new_owned(p.clone(), Solution::baseline(&p));
        eval.apply_move(0, Placement::baseline(&p.offers[0]));
        let baseline = eval.problem().baseline_imbalance.clone();
        eval.rebase(&baseline, &[]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eval.revert()));
        assert!(result.is_err(), "revert across a rebase must panic");
    }

    #[test]
    fn fork_is_independent() {
        let p = problem(15, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let eval = DeltaEvaluator::new(&p, Solution::random(&p, &mut rng));
        let before = eval.total();
        let mut forked = eval.fork();
        assert_eq!(forked.total(), before);
        // Mutating the fork leaves the parent untouched (checked via a
        // later parent move whose debug assertion would catch drift).
        for _ in 0..30 {
            let j = rng.gen_range(0..p.offers.len());
            forked.apply_move(j, Placement::random(&p.offers[j], &mut rng));
        }
        assert_eq!(eval.total(), before);
        let reference = evaluate(&p, forked.solution()).total();
        assert!((forked.total() - reference).abs() < 1e-6);
    }

    #[test]
    fn adopt_scoped_converges_to_winner() {
        let p = problem(12, 23);
        let mut rng = StdRng::seed_from_u64(24);
        let mut eval = DeltaEvaluator::new(&p, Solution::baseline(&p));
        let mut forked = eval.fork();
        let scope: Vec<usize> = vec![1, 3, 5, 7];
        for &j in &scope {
            forked.apply_move(j, Placement::random(&p.offers[j], &mut rng));
        }
        let winner_total = forked.total();
        let winner = forked.into_solution();
        let total = eval.adopt_scoped(&winner, &scope);
        assert!((total - winner_total).abs() < 1e-6);
        assert_eq!(eval.solution(), &winner);
    }

    #[test]
    fn resync_squashes_drift() {
        let p = problem(8, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let mut eval = DeltaEvaluator::new(&p, Solution::baseline(&p));
        for _ in 0..50 {
            let j = rng.gen_range(0..p.offers.len());
            eval.apply_move(j, Placement::random(&p.offers[j], &mut rng));
        }
        eval.resync();
        let reference = evaluate(&p, eval.solution()).total();
        assert!((eval.total() - reference).abs() < 1e-12);
    }
}
