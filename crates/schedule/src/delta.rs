//! O(move)-time incremental schedule scoring.
//!
//! Every metaheuristic in this crate searches by perturbing *one offer at
//! a time*, yet the reference [`evaluate`](crate::cost::evaluate) rebuilds
//! the entire residual-imbalance vector and re-prices every horizon slot
//! per candidate — O(offers × duration + horizon) work for a move that
//! only disturbs the handful of slots inside one offer's window. The paper
//! (§6/§8) asks for schedules that are "incrementally maintained if
//! forecast values change over time"; at BRP scale (thousands of
//! aggregated offers, millions of users behind them) per-move cost must
//! not grow with the offer count.
//!
//! [`DeltaEvaluator`] owns the residual vector, the per-slot market/
//! mismatch cost, and the per-offer activation cost as mutable state. A
//! move — replacing one offer's [`Placement`] — touches only the slots in
//! the union of the old and new placement windows, so rescoring costs
//! O(offer duration), independent of how many other offers exist. One
//! level of undo ([`DeltaEvaluator::revert`]) makes the propose →
//! score → accept/reject loop allocation-free: the scratch placement and
//! the touched-slot log are reused across moves.
//!
//! In debug builds every committed move is cross-checked against the full
//! [`evaluate`](crate::cost::evaluate); the release hot path trusts the
//! delta bookkeeping (drift is bounded by one f64 rounding per touched
//! slot per move and verified to stay under 1e-6 by the property tests).

use crate::cost::{evaluate, residual_imbalance_into, slot_cost, CostBreakdown};
use crate::problem::SchedulingProblem;
use crate::solution::{Placement, Recorder, Solution};
use mirabel_core::FlexOffer;
use rand::rngs::StdRng;
use rand::Rng;

/// Undo log for the last uncommitted move.
#[derive(Debug)]
struct Undo {
    offer_idx: usize,
    old_placement: Placement,
    old_offer_cost: f64,
    old_total: f64,
    /// First-touch snapshots: `(slot, residual, slot_cost)`.
    touched: Vec<(usize, f64, f64)>,
    active: bool,
}

/// Incremental evaluator: mutable cost state plus O(move) updates.
///
/// ```
/// use mirabel_schedule::{scenario, DeltaEvaluator, ScenarioConfig, Solution};
/// use mirabel_schedule::cost::evaluate;
///
/// let p = scenario(ScenarioConfig { offer_count: 20, seed: 1, ..Default::default() });
/// let mut eval = DeltaEvaluator::new(&p, Solution::baseline(&p));
/// let before = eval.total();
/// // Propose a move on offer 3: bump every fraction to 1.0.
/// let after = eval.propose(3, |g, _offer| g.fractions.iter_mut().for_each(|f| *f = 1.0));
/// assert!((after - evaluate(&p, eval.solution()).total()).abs() < 1e-9);
/// eval.revert();
/// assert!((eval.total() - before).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct DeltaEvaluator<'p> {
    problem: &'p SchedulingProblem,
    solution: Solution,
    /// Residual imbalance per slot (before market transactions).
    residual: Vec<f64>,
    /// Per-slot mismatch + market cost of `residual` under the
    /// closed-form trading policy.
    slot_costs: Vec<f64>,
    /// Per-offer activation cost (energy × unit price).
    offer_costs: Vec<f64>,
    /// Running total: Σ slot_costs + Σ offer_costs.
    total: f64,
    /// Scratch placement reused by [`propose`](Self::propose).
    scratch: Placement,
    undo: Undo,
}

impl<'p> DeltaEvaluator<'p> {
    /// Build the evaluator state from a complete solution. This is the
    /// only O(offers × duration + horizon) entry point; every subsequent
    /// move costs O(offer duration).
    pub fn new(problem: &'p SchedulingProblem, solution: Solution) -> DeltaEvaluator<'p> {
        assert_eq!(
            solution.placements.len(),
            problem.offers.len(),
            "solution/offer arity mismatch"
        );
        let mut eval = DeltaEvaluator {
            problem,
            solution,
            residual: Vec::new(),
            slot_costs: Vec::new(),
            offer_costs: Vec::new(),
            total: 0.0,
            scratch: Placement {
                start: problem.start,
                fractions: Vec::new(),
            },
            undo: Undo {
                offer_idx: 0,
                old_placement: Placement {
                    start: problem.start,
                    fractions: Vec::new(),
                },
                old_offer_cost: 0.0,
                old_total: 0.0,
                touched: Vec::new(),
                active: false,
            },
        };
        eval.resync();
        eval
    }

    /// Recompute all cached state from scratch (also clears the undo
    /// log). Useful to squash accumulated float drift on very long runs;
    /// costs the same as [`new`](Self::new).
    pub fn resync(&mut self) {
        residual_imbalance_into(self.problem, &self.solution, &mut self.residual);
        let p = self.problem;
        self.slot_costs.clear();
        self.slot_costs
            .extend(self.residual.iter().enumerate().map(|(i, &r)| {
                slot_cost(
                    r,
                    p.imbalance_penalty[i],
                    p.prices.buy[i],
                    p.prices.sell[i],
                    p.prices.max_trade_per_slot,
                )
            }));
        self.offer_costs.clear();
        self.offer_costs.extend(
            self.solution
                .placements
                .iter()
                .zip(&p.offers)
                .map(|(pl, o)| activation_cost(pl, o)),
        );
        self.total = self.slot_costs.iter().sum::<f64>() + self.offer_costs.iter().sum::<f64>();
        self.undo.active = false;
    }

    /// Current total schedule cost (EUR), identical to
    /// `evaluate(problem, solution).total()` up to float drift.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The problem being evaluated.
    pub fn problem(&self) -> &'p SchedulingProblem {
        self.problem
    }

    /// Current solution (read-only).
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// Consume the evaluator, yielding the current solution.
    pub fn into_solution(self) -> Solution {
        self.solution
    }

    /// Full cost breakdown of the current solution (O(horizon); intended
    /// for reporting once search finishes, not for the hot loop).
    pub fn breakdown(&self) -> CostBreakdown {
        evaluate(self.problem, &self.solution)
    }

    /// Replace offer `j`'s placement, updating only the slots inside the
    /// old and new placement windows. Returns the new total cost. The
    /// previous state can be restored with [`revert`](Self::revert) until
    /// the next move is applied.
    pub fn apply_move(&mut self, j: usize, new_placement: Placement) -> f64 {
        let offer = &self.problem.offers[j];
        debug_assert_eq!(
            new_placement.fractions.len(),
            offer.duration() as usize,
            "placement/profile arity mismatch"
        );
        debug_assert!(
            new_placement.start >= offer.earliest_start()
                && new_placement.start <= offer.latest_start(),
            "placement start outside the offer's window"
        );

        self.undo.offer_idx = j;
        self.undo.old_total = self.total;
        self.undo.touched.clear();
        self.undo.active = true;

        let sign = offer.demand_sign();

        // Withdraw the old placement's energy from its window…
        let old = std::mem::replace(&mut self.solution.placements[j], new_placement);
        let base = self.problem.slot_index(old.start);
        for (k, (range, &frac)) in offer
            .profile()
            .slot_ranges()
            .zip(&old.fractions)
            .enumerate()
        {
            let t = base + k;
            self.snapshot(t);
            self.residual[t] -= sign * range.lerp(frac).kwh();
        }

        // …deposit the new placement's energy into its window
        // (snapshots first: they must capture pre-deposit values)…
        let base = self.problem.slot_index(self.solution.placements[j].start);
        for k in 0..offer.duration() as usize {
            self.snapshot(base + k);
        }
        let new = &self.solution.placements[j];
        for (k, (range, &frac)) in offer
            .profile()
            .slot_ranges()
            .zip(&new.fractions)
            .enumerate()
        {
            self.residual[base + k] += sign * range.lerp(frac).kwh();
        }

        // …and re-price exactly the touched slots.
        let p = self.problem;
        for i in 0..self.undo.touched.len() {
            let t = self.undo.touched[i].0;
            let sc = slot_cost(
                self.residual[t],
                p.imbalance_penalty[t],
                p.prices.buy[t],
                p.prices.sell[t],
                p.prices.max_trade_per_slot,
            );
            self.total += sc - self.slot_costs[t];
            self.slot_costs[t] = sc;
        }

        let oc = activation_cost(&self.solution.placements[j], offer);
        self.undo.old_offer_cost = self.offer_costs[j];
        self.total += oc - self.offer_costs[j];
        self.offer_costs[j] = oc;
        // The placement displaced from the previous undo slot is dead;
        // recycle its buffer as propose() scratch capacity so the
        // propose/apply/revert cycle never allocates in steady state.
        let dead = std::mem::replace(&mut self.undo.old_placement, old);
        if dead.fractions.capacity() > self.scratch.fractions.capacity() {
            self.scratch = dead;
        }

        #[cfg(debug_assertions)]
        self.assert_in_sync();
        self.total
    }

    /// Allocation-free variant of [`apply_move`](Self::apply_move): copy
    /// offer `j`'s current placement into an internal scratch buffer, let
    /// `mutate` edit it (the offer is passed along for `repair`), then
    /// apply the result as a move. Returns the new total cost.
    pub fn propose(&mut self, j: usize, mutate: impl FnOnce(&mut Placement, &FlexOffer)) -> f64 {
        let mut cand = std::mem::replace(
            &mut self.scratch,
            Placement {
                start: self.problem.start,
                fractions: Vec::new(),
            },
        );
        let current = &self.solution.placements[j];
        cand.start = current.start;
        cand.fractions.clear();
        cand.fractions.extend_from_slice(&current.fractions);
        mutate(&mut cand, &self.problem.offers[j]);
        self.apply_move(j, cand)
    }

    /// Undo the last move. Panics if there is nothing to revert (each
    /// move can be reverted at most once).
    pub fn revert(&mut self) {
        assert!(self.undo.active, "revert() without a preceding move");
        self.undo.active = false;
        let j = self.undo.offer_idx;
        for &(t, r, sc) in &self.undo.touched {
            self.residual[t] = r;
            self.slot_costs[t] = sc;
        }
        self.offer_costs[j] = self.undo.old_offer_cost;
        // Swap rather than overwrite: the rejected placement becomes
        // reusable scratch capacity for the next propose().
        std::mem::swap(
            &mut self.solution.placements[j],
            &mut self.undo.old_placement,
        );
        // Restoring the saved total (instead of re-subtracting deltas)
        // makes revert drift-free.
        self.total = self.undo.old_total;

        #[cfg(debug_assertions)]
        self.assert_in_sync();
    }

    /// Record `(slot, residual, slot_cost)` the first time a move touches
    /// slot `t`. Windows are a handful of slots, so the linear duplicate
    /// scan beats any hashing.
    #[inline]
    fn snapshot(&mut self, t: usize) {
        if !self.undo.touched.iter().any(|&(s, _, _)| s == t) {
            self.undo
                .touched
                .push((t, self.residual[t], self.slot_costs[t]));
        }
    }

    /// Debug-build cross-check: the running total must agree with the
    /// reference full evaluation.
    #[cfg(debug_assertions)]
    fn assert_in_sync(&self) {
        let reference = evaluate(self.problem, &self.solution).total();
        let tol = 1e-6 * reference.abs().max(1.0);
        debug_assert!(
            (self.total - reference).abs() <= tol,
            "delta total {} diverged from full evaluation {}",
            self.total,
            reference
        );
    }
}

/// Budget-guarded first-improvement hill climb over single-offer moves,
/// shared by the greedy polish, the EA's memetic refinement and
/// incremental rescheduling: propose a mutation of a random offer's
/// placement, record the candidate, keep it only if it lowers the total.
/// Returns the final running total.
pub(crate) fn hill_climb(
    eval: &mut DeltaEvaluator<'_>,
    recorder: &mut Recorder,
    rng: &mut StdRng,
    max_moves: usize,
    mut mutate: impl FnMut(&mut Placement, &FlexOffer, &mut StdRng),
) -> f64 {
    let n = eval.problem().offers.len();
    let mut f_cur = eval.total();
    for _ in 0..max_moves {
        if n == 0 || recorder.exhausted() {
            break;
        }
        let j = rng.gen_range(0..n);
        let f_cand = eval.propose(j, |g, offer| mutate(g, offer, rng));
        recorder.record(f_cand);
        if f_cand < f_cur {
            f_cur = f_cand;
        } else {
            eval.revert();
        }
    }
    f_cur
}

/// Activation cost of one placement: delivered energy × unit price.
fn activation_cost(placement: &Placement, offer: &FlexOffer) -> f64 {
    let energy: f64 = offer
        .profile()
        .slot_ranges()
        .zip(&placement.fractions)
        .map(|(r, &f)| r.lerp(f).kwh())
        .sum();
    energy * offer.unit_price().eur()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{scenario, ScenarioConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn problem(n: usize, seed: u64) -> SchedulingProblem {
        scenario(ScenarioConfig {
            offer_count: n,
            seed,
            ..ScenarioConfig::default()
        })
    }

    #[test]
    fn new_matches_full_evaluation() {
        let p = problem(25, 1);
        for sol in [Solution::baseline(&p), {
            let mut rng = StdRng::seed_from_u64(2);
            Solution::random(&p, &mut rng)
        }] {
            let reference = evaluate(&p, &sol).total();
            let eval = DeltaEvaluator::new(&p, sol);
            assert!((eval.total() - reference).abs() < 1e-9);
        }
    }

    #[test]
    fn apply_move_matches_full_evaluation() {
        let p = problem(20, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut eval = DeltaEvaluator::new(&p, Solution::random(&p, &mut rng));
        for _ in 0..500 {
            let j = rng.gen_range(0..p.offers.len());
            let new_p = Placement::random(&p.offers[j], &mut rng);
            let total = eval.apply_move(j, new_p);
            let reference = evaluate(&p, eval.solution()).total();
            assert!(
                (total - reference).abs() < 1e-6,
                "delta {total} vs full {reference}"
            );
        }
    }

    #[test]
    fn revert_restores_exact_state() {
        let p = problem(15, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut eval = DeltaEvaluator::new(&p, Solution::random(&p, &mut rng));
        for _ in 0..200 {
            let before_total = eval.total();
            let before_solution = eval.solution().clone();
            let j = rng.gen_range(0..p.offers.len());
            eval.apply_move(j, Placement::random(&p.offers[j], &mut rng));
            eval.revert();
            assert_eq!(eval.total(), before_total, "total must restore exactly");
            assert_eq!(eval.solution(), &before_solution);
        }
    }

    #[test]
    fn propose_equals_apply_move() {
        let p = problem(12, 7);
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        let start = Solution::baseline(&p);
        let mut a = DeltaEvaluator::new(&p, start.clone());
        let mut b = DeltaEvaluator::new(&p, start);
        for _ in 0..100 {
            let j = rng_a.gen_range(0..p.offers.len());
            let _ = rng_b.gen_range(0..p.offers.len());
            let np = Placement::random(&p.offers[j], &mut rng_a);
            let np_b = Placement::random(&p.offers[j], &mut rng_b);
            let ta = a.apply_move(j, np);
            let tb = b.propose(j, |g, _| {
                g.start = np_b.start;
                g.fractions.clear();
                g.fractions.extend_from_slice(&np_b.fractions);
            });
            assert_eq!(ta, tb);
        }
    }

    #[test]
    #[should_panic(expected = "revert() without a preceding move")]
    fn double_revert_panics() {
        let p = problem(3, 9);
        let mut eval = DeltaEvaluator::new(&p, Solution::baseline(&p));
        eval.apply_move(0, Placement::baseline(&p.offers[0]));
        eval.revert();
        eval.revert();
    }

    #[test]
    fn overlapping_windows_handled() {
        // A move that shifts an offer by one slot overlaps its own old
        // window; the first-touch snapshot must keep revert exact.
        let p = problem(10, 11);
        let j = p
            .offers
            .iter()
            .position(|o| o.time_flexibility() > 0 && o.duration() > 1)
            .expect("scenario contains a shiftable multi-slot offer");
        let mut eval = DeltaEvaluator::new(&p, Solution::baseline(&p));
        let before = eval.total();
        let mut shifted = Placement::baseline(&p.offers[j]);
        shifted.start += 1u32;
        let total = eval.apply_move(j, shifted);
        let reference = evaluate(&p, eval.solution()).total();
        assert!((total - reference).abs() < 1e-9);
        eval.revert();
        assert_eq!(eval.total(), before);
    }

    #[test]
    fn resync_squashes_drift() {
        let p = problem(8, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let mut eval = DeltaEvaluator::new(&p, Solution::baseline(&p));
        for _ in 0..50 {
            let j = rng.gen_range(0..p.offers.len());
            eval.apply_move(j, Placement::random(&p.offers[j], &mut rng));
        }
        eval.resync();
        let reference = evaluate(&p, eval.solution()).total();
        assert!((eval.total() - reference).abs() < 1e-12);
    }
}
