//! The MIRABEL scheduling problem definition.

use mirabel_core::{FlexOffer, TimeSlot};
use serde::{Deserialize, Serialize};

/// Per-slot market conditions for buying and selling energy
/// ("the possibility of selling energy to (and buying energy from) the
/// market (other BRPs)", paper §6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketPrices {
    /// Price (EUR/kWh) to buy energy, one entry per horizon slot.
    pub buy: Vec<f64>,
    /// Price (EUR/kWh) obtained when selling, one entry per horizon slot.
    pub sell: Vec<f64>,
    /// Maximum tradable energy per slot (kWh) in either direction.
    pub max_trade_per_slot: f64,
}

impl MarketPrices {
    /// Flat prices over `len` slots.
    pub fn flat(len: usize, buy: f64, sell: f64, cap: f64) -> MarketPrices {
        MarketPrices {
            buy: vec![buy; len],
            sell: vec![sell; len],
            max_trade_per_slot: cap,
        }
    }
}

/// One BRP-level scheduling instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulingProblem {
    /// First slot of the planning horizon.
    pub start: TimeSlot,
    /// Forecast imbalance per horizon slot (kWh): non-flexible demand
    /// minus forecast RES production. Positive = deficit.
    pub baseline_imbalance: Vec<f64>,
    /// The aggregated flex-offers to place.
    pub offers: Vec<FlexOffer>,
    /// Market conditions.
    pub prices: MarketPrices,
    /// Mismatch penalty (EUR/kWh of residual imbalance) per slot —
    /// "mismatches at peak periods cost the BRP more than at other
    /// periods".
    pub imbalance_penalty: Vec<f64>,
}

/// Problem construction errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemError {
    /// Vector lengths disagree with the horizon.
    LengthMismatch(&'static str),
    /// An offer cannot be fully placed inside the horizon.
    OfferOutsideHorizon(u64),
}

impl std::fmt::Display for ProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemError::LengthMismatch(what) => write!(f, "{what} length mismatch"),
            ProblemError::OfferOutsideHorizon(id) => {
                write!(f, "offer fo{id} does not fit the horizon")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

impl SchedulingProblem {
    /// Build and validate a problem instance.
    pub fn new(
        start: TimeSlot,
        baseline_imbalance: Vec<f64>,
        offers: Vec<FlexOffer>,
        prices: MarketPrices,
        imbalance_penalty: Vec<f64>,
    ) -> Result<SchedulingProblem, ProblemError> {
        let h = baseline_imbalance.len();
        if prices.buy.len() != h || prices.sell.len() != h {
            return Err(ProblemError::LengthMismatch("market prices"));
        }
        if imbalance_penalty.len() != h {
            return Err(ProblemError::LengthMismatch("imbalance penalty"));
        }
        let end = start + h as u32;
        for o in &offers {
            if o.earliest_start() < start || o.latest_start() + o.duration() > end {
                return Err(ProblemError::OfferOutsideHorizon(o.id().value()));
            }
        }
        Ok(SchedulingProblem {
            start,
            baseline_imbalance,
            offers,
            prices,
            imbalance_penalty,
        })
    }

    /// Horizon length in slots.
    pub fn horizon(&self) -> usize {
        self.baseline_imbalance.len()
    }

    /// First slot after the horizon.
    pub fn end(&self) -> TimeSlot {
        self.start + self.horizon() as u32
    }

    /// Index of absolute slot `t` within the horizon.
    pub fn slot_index(&self, t: TimeSlot) -> usize {
        debug_assert!(t >= self.start && t < self.end());
        (t - self.start) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile};

    fn offer(id: u64, start: i64, tf: u32, dur: u32) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(start))
            .time_flexibility(tf)
            .profile(Profile::uniform(dur, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap()
    }

    #[test]
    fn valid_problem() {
        let p = SchedulingProblem::new(
            TimeSlot(0),
            vec![0.0; 96],
            vec![offer(1, 10, 4, 2)],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        )
        .unwrap();
        assert_eq!(p.horizon(), 96);
        assert_eq!(p.end(), TimeSlot(96));
        assert_eq!(p.slot_index(TimeSlot(10)), 10);
    }

    #[test]
    fn rejects_length_mismatch() {
        let e = SchedulingProblem::new(
            TimeSlot(0),
            vec![0.0; 96],
            vec![],
            MarketPrices::flat(95, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert_eq!(e, Err(ProblemError::LengthMismatch("market prices")));
        let e2 = SchedulingProblem::new(
            TimeSlot(0),
            vec![0.0; 96],
            vec![],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 10],
        );
        assert_eq!(e2, Err(ProblemError::LengthMismatch("imbalance penalty")));
    }

    #[test]
    fn rejects_offer_outside_horizon() {
        // latest_start 94 + dur 4 = 98 > 96
        let e = SchedulingProblem::new(
            TimeSlot(0),
            vec![0.0; 96],
            vec![offer(7, 90, 4, 4)],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert_eq!(e, Err(ProblemError::OfferOutsideHorizon(7)));
        // offer starting before the horizon
        let e2 = SchedulingProblem::new(
            TimeSlot(10),
            vec![0.0; 86],
            vec![offer(8, 5, 0, 2)],
            MarketPrices::flat(86, 0.08, 0.03, 100.0),
            vec![0.2; 86],
        );
        assert_eq!(e2, Err(ProblemError::OfferOutsideHorizon(8)));
    }
}
