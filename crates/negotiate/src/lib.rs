//! # mirabel-negotiate
//!
//! The MIRABEL negotiation component (paper §7): "Negotiation in MIRABEL
//! finds an agreement between the prosumer and its BRP about the price for
//! flex-offers."
//!
//! * [`potential`] — the three flexibility dimensions the BRP can
//!   monetize (assignment, scheduling and energy flexibility), each
//!   normalized to a `[0, 1]` *flexibility potential* by a sigmoid, and
//!   combined as a weighted sum into the offer's total value;
//! * [`pricing`] — the two price-setting schemes: pre-execution
//!   ("monetize flexibility", usable as an acceptance criterion) and
//!   post-execution profit sharing ("share realized profit", which cannot
//!   be);
//! * [`acceptance`] — "the BRP must be able to reject a flex-offer that
//!   generate\[s\] loss or can not be processed in time";
//! * [`contract`] — flex contracts and the open-contract fallback.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acceptance;
pub mod calibration;
pub mod contract;
pub mod potential;
pub mod pricing;

pub use acceptance::{AcceptanceDecision, AcceptancePolicy, RejectionReason};
pub use calibration::{apply_calibration, calibrate_weights, ValueObservation};
pub use contract::{Contract, Settlement};
pub use potential::{sigmoid, FlexibilityPotentials, PotentialConfig};
pub use pricing::{PreExecutionPricing, ProfitSharing};
