//! Price-setting schemes (paper §7).
//!
//! Two schemes with the trade-off the paper highlights:
//!
//! * [`PreExecutionPricing`] values the offer *before* execution from its
//!   flexibility potentials — usable as an acceptance criterion;
//! * [`ProfitSharing`] pays a share of the *realized* profit after
//!   execution — better incentives, but "any price setting after
//!   execution time can not be used as an acceptance criteria".

use crate::potential::{FlexibilityPotentials, PotentialConfig};
use mirabel_core::{FlexOffer, Price, TimeSlot};
use serde::{Deserialize, Serialize};

/// Monetize-flexibility pricing: value = weighted potential sum scaled to
/// a per-kWh discount.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PreExecutionPricing {
    /// Potential configuration (sigmoids + weights).
    pub potentials: PotentialConfig,
    /// EUR/kWh discount granted at total value 1.0 — the maximum discount
    /// a maximally flexible offer can earn.
    pub max_discount_per_kwh: f64,
}

impl Default for PreExecutionPricing {
    fn default() -> PreExecutionPricing {
        PreExecutionPricing {
            potentials: PotentialConfig::default(),
            max_discount_per_kwh: 0.05,
        }
    }
}

impl PreExecutionPricing {
    /// The offer's total flexibility value in `[0, 1]` at time `now`.
    pub fn value(&self, offer: &FlexOffer, now: TimeSlot) -> f64 {
        FlexibilityPotentials::compute(offer, now, &self.potentials).total_value(&self.potentials)
    }

    /// The per-kWh discount offered to the prosumer ("a consumer is given
    /// a discount for energy if she provides flexibilities", paper §2).
    pub fn discount_per_kwh(&self, offer: &FlexOffer, now: TimeSlot) -> Price {
        Price(self.value(offer, now) * self.max_discount_per_kwh)
    }

    /// Total payment for the offer: discount × maximum dispatchable
    /// energy.
    pub fn offer_payment(&self, offer: &FlexOffer, now: TimeSlot) -> Price {
        self.discount_per_kwh(offer, now) * offer.profile().max_total_energy().kwh()
    }
}

/// Share-realized-profit pricing.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProfitSharing {
    /// Fraction of the realized profit passed to the prosumer, in `[0,1]`.
    pub prosumer_share: f64,
}

impl Default for ProfitSharing {
    fn default() -> ProfitSharing {
        ProfitSharing {
            prosumer_share: 0.3,
        }
    }
}

impl ProfitSharing {
    /// Payment after execution: `share × max(0, realized_profit)`.
    /// `realized_profit` is the BRP's cost reduction attributable to this
    /// offer (cost of the schedule without the offer minus with it);
    /// losses are not passed on.
    pub fn payment(&self, realized_profit: Price) -> Price {
        Price(self.prosumer_share * realized_profit.eur().max(0.0))
    }

    /// Attribute a total profit over the offers proportionally to their
    /// scheduled energies — a simple, auditable split used by the EDMS
    /// settlement step.
    pub fn attribute(&self, total_profit: Price, scheduled_energies: &[f64]) -> Vec<Price> {
        let total: f64 = scheduled_energies.iter().sum();
        if total <= 0.0 {
            return vec![Price::ZERO; scheduled_energies.len()];
        }
        scheduled_energies
            .iter()
            .map(|&e| self.payment(Price(total_profit.eur() * e / total)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile};

    fn offer(tf: u32, width: f64) -> FlexOffer {
        FlexOffer::builder(1, 1)
            .earliest_start(TimeSlot(100))
            .time_flexibility(tf)
            .assignment_before(TimeSlot(80))
            .profile(Profile::uniform(
                4,
                EnergyRange::new(1.0, 1.0 + width).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn flexible_offer_earns_discount() {
        let pricing = PreExecutionPricing::default();
        let d = pricing.discount_per_kwh(&offer(24, 1.5), TimeSlot(40));
        assert!(d.eur() > 0.0);
        assert!(d.eur() <= pricing.max_discount_per_kwh);
    }

    #[test]
    fn inflexible_offer_earns_almost_nothing() {
        let pricing = PreExecutionPricing::default();
        let rigid = pricing.value(&offer(0, 0.0), TimeSlot(99));
        let flexible = pricing.value(&offer(24, 1.5), TimeSlot(40));
        assert!(rigid < 0.15 * flexible, "rigid {rigid} flexible {flexible}");
    }

    #[test]
    fn payment_scales_with_energy() {
        let pricing = PreExecutionPricing::default();
        let o = offer(24, 1.5);
        let pay = pricing.offer_payment(&o, TimeSlot(40));
        let per_kwh = pricing.discount_per_kwh(&o, TimeSlot(40));
        assert!(pay.approx_eq(per_kwh * o.profile().max_total_energy().kwh(), 1e-12));
    }

    #[test]
    fn profit_share_never_negative() {
        let ps = ProfitSharing {
            prosumer_share: 0.5,
        };
        assert_eq!(ps.payment(Price(10.0)), Price(5.0));
        assert_eq!(ps.payment(Price(-10.0)), Price::ZERO);
    }

    #[test]
    fn attribution_proportional_to_energy() {
        let ps = ProfitSharing {
            prosumer_share: 0.5,
        };
        let shares = ps.attribute(Price(10.0), &[1.0, 3.0]);
        assert!(shares[0].approx_eq(Price(1.25), 1e-12));
        assert!(shares[1].approx_eq(Price(3.75), 1e-12));
        // degenerate: no energy scheduled
        let zero = ps.attribute(Price(10.0), &[0.0, 0.0]);
        assert_eq!(zero, vec![Price::ZERO, Price::ZERO]);
    }
}
