//! Contracts between prosumer and BRP.
//!
//! Every prosumer has an *open contract* (plain tariff). Accepted
//! flex-offers add a *flex contract* on top: the prosumer is paid the
//! agreed flexibility compensation once the schedule executes. When an
//! offer times out un-assigned, only the open contract applies (paper §1:
//! "pending flexibilities simply timeout and customers fall back to the
//! open contract").

use mirabel_core::{ActorId, FlexOfferId, Price, TimeSlot};
use serde::{Deserialize, Serialize};

/// A contract governing one prosumer's energy exchange.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Contract {
    /// The default tariff: energy at `tariff_per_kwh`, no flexibility
    /// obligations.
    Open {
        /// The prosumer.
        prosumer: ActorId,
        /// Plain energy tariff (EUR/kWh).
        tariff_per_kwh: Price,
    },
    /// A negotiated flex-offer assignment.
    Flex {
        /// The prosumer.
        prosumer: ActorId,
        /// The governed offer.
        offer: FlexOfferId,
        /// Base tariff (EUR/kWh).
        tariff_per_kwh: Price,
        /// Agreed flexibility discount (EUR/kWh on scheduled energy).
        discount_per_kwh: Price,
        /// When the contract was agreed.
        agreed_at: TimeSlot,
    },
}

impl Contract {
    /// The prosumer bound by the contract.
    pub fn prosumer(&self) -> ActorId {
        match self {
            Contract::Open { prosumer, .. } | Contract::Flex { prosumer, .. } => *prosumer,
        }
    }

    /// Effective price per kWh the prosumer pays for consumption under
    /// this contract.
    pub fn effective_price(&self) -> Price {
        match self {
            Contract::Open { tariff_per_kwh, .. } => *tariff_per_kwh,
            Contract::Flex {
                tariff_per_kwh,
                discount_per_kwh,
                ..
            } => *tariff_per_kwh - *discount_per_kwh,
        }
    }
}

/// Settlement of one executed (or expired) flex-offer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Settlement {
    /// The offer settled.
    pub offer: FlexOfferId,
    /// Energy actually dispatched (kWh).
    pub energy_kwh: f64,
    /// What the prosumer pays for the energy.
    pub energy_charge: Price,
    /// Flexibility compensation paid to the prosumer.
    pub flexibility_credit: Price,
}

impl Settlement {
    /// Settle `energy_kwh` under `contract`; an extra post-execution
    /// profit share (if any) is added to the credit.
    pub fn settle(
        contract: &Contract,
        offer: FlexOfferId,
        energy_kwh: f64,
        profit_share: Price,
    ) -> Settlement {
        let (charge, credit) = match contract {
            Contract::Open { tariff_per_kwh, .. } => (*tariff_per_kwh * energy_kwh, Price::ZERO),
            Contract::Flex {
                tariff_per_kwh,
                discount_per_kwh,
                ..
            } => (*tariff_per_kwh * energy_kwh, *discount_per_kwh * energy_kwh),
        };
        Settlement {
            offer,
            energy_kwh,
            energy_charge: charge,
            flexibility_credit: credit + profit_share,
        }
    }

    /// Net amount the prosumer owes (charge minus credit).
    pub fn net_due(&self) -> Price {
        self.energy_charge - self.flexibility_credit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open() -> Contract {
        Contract::Open {
            prosumer: ActorId(1),
            tariff_per_kwh: Price(0.30),
        }
    }

    fn flex() -> Contract {
        Contract::Flex {
            prosumer: ActorId(1),
            offer: FlexOfferId(7),
            tariff_per_kwh: Price(0.30),
            discount_per_kwh: Price(0.04),
            agreed_at: TimeSlot(10),
        }
    }

    #[test]
    fn effective_price_includes_discount() {
        assert!(open().effective_price().approx_eq(Price(0.30), 1e-12));
        assert!(flex().effective_price().approx_eq(Price(0.26), 1e-12));
        assert_eq!(flex().prosumer(), ActorId(1));
    }

    #[test]
    fn open_contract_settlement_has_no_credit() {
        let s = Settlement::settle(&open(), FlexOfferId(7), 10.0, Price::ZERO);
        assert!(s.energy_charge.approx_eq(Price(3.0), 1e-12));
        assert_eq!(s.flexibility_credit, Price::ZERO);
        assert!(s.net_due().approx_eq(Price(3.0), 1e-12));
    }

    #[test]
    fn flex_contract_settlement_credits_discount() {
        let s = Settlement::settle(&flex(), FlexOfferId(7), 10.0, Price::ZERO);
        assert!(s.flexibility_credit.approx_eq(Price(0.4), 1e-12));
        assert!(s.net_due().approx_eq(Price(2.6), 1e-12));
    }

    #[test]
    fn profit_share_adds_to_credit() {
        let s = Settlement::settle(&flex(), FlexOfferId(7), 10.0, Price(1.0));
        assert!(s.flexibility_credit.approx_eq(Price(1.4), 1e-12));
    }
}
