//! Flexibility potentials (paper §7 "Monetize Flexibility").
//!
//! "Each of the described flexibility parameters can be normalized to
//! flexibility potentials by applying a function, e.g. the sigmoid
//! function, that maps the flexibility parameter to \[a\] value between 0
//! and 1. The total value of each flex-offer is the weighted sum of its
//! flexibility potentials and can be computed before execution time."

use mirabel_core::{FlexOffer, SlotSpan, TimeSlot};
use serde::{Deserialize, Serialize};

/// Logistic squashing: `1 / (1 + exp(-steepness · (x − midpoint)))`.
pub fn sigmoid(x: f64, midpoint: f64, steepness: f64) -> f64 {
    1.0 / (1.0 + (-steepness * (x - midpoint)).exp())
}

/// Sigmoid shape per flexibility dimension plus combination weights.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PotentialConfig {
    /// Midpoint (slots) of the assignment-flexibility sigmoid.
    pub assignment_mid: f64,
    /// Steepness of the assignment-flexibility sigmoid.
    pub assignment_steep: f64,
    /// Slots until the next day-ahead trading period: assignment
    /// flexibility beyond this "is marginalized by the option for the BRP
    /// to trade on the day-ahead market".
    pub day_ahead_horizon: SlotSpan,
    /// Midpoint (slots) of the scheduling-flexibility sigmoid.
    pub scheduling_mid: f64,
    /// Steepness of the scheduling-flexibility sigmoid.
    pub scheduling_steep: f64,
    /// Midpoint (kWh) of the energy-flexibility sigmoid.
    pub energy_mid: f64,
    /// Steepness of the energy-flexibility sigmoid.
    pub energy_steep: f64,
    /// Weight of the assignment potential in the total value.
    pub w_assignment: f64,
    /// Weight of the scheduling potential.
    pub w_scheduling: f64,
    /// Weight of the energy potential.
    pub w_energy: f64,
}

impl Default for PotentialConfig {
    fn default() -> PotentialConfig {
        PotentialConfig {
            assignment_mid: 16.0, // 4 h of re-scheduling room
            assignment_steep: 0.3,
            day_ahead_horizon: 96,
            scheduling_mid: 8.0, // 2 h of start flexibility
            scheduling_steep: 0.4,
            energy_mid: 5.0, // 5 kWh dispatchable
            energy_steep: 0.5,
            w_assignment: 0.2,
            w_scheduling: 0.5,
            w_energy: 0.3,
        }
    }
}

/// The three normalized potentials of one offer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlexibilityPotentials {
    /// Potential of the time left for re-scheduling before the assignment
    /// deadline (capped at the day-ahead horizon).
    pub assignment: f64,
    /// Potential of the start-time window width.
    pub scheduling: f64,
    /// Potential of the dispatchable energy amount.
    pub energy: f64,
}

impl FlexibilityPotentials {
    /// Compute the potentials of `offer` as seen at `now`.
    pub fn compute(offer: &FlexOffer, now: TimeSlot, cfg: &PotentialConfig) -> Self {
        // Assignment flexibility beyond the day-ahead horizon adds no
        // value: the BRP could simply trade the energy day-ahead.
        let af = offer.assignment_flexibility(now).min(cfg.day_ahead_horizon);
        let assignment = sigmoid(af as f64, cfg.assignment_mid, cfg.assignment_steep);

        // "If the earliest start time and latest start time … are equal
        // there is no Scheduling flexibility": map zero width to zero.
        let sf = offer.time_flexibility();
        let scheduling = if sf == 0 {
            0.0
        } else {
            sigmoid(sf as f64, cfg.scheduling_mid, cfg.scheduling_steep)
        };

        let ef = offer.profile().energy_flexibility().kwh();
        let energy = if ef <= 0.0 {
            0.0
        } else {
            sigmoid(ef, cfg.energy_mid, cfg.energy_steep)
        };

        FlexibilityPotentials {
            assignment,
            scheduling,
            energy,
        }
    }

    /// Weighted-sum total value in `[0, w_total]`.
    ///
    /// An offer with neither scheduling nor energy flexibility gives the
    /// BRP nothing to dispatch — assignment flexibility alone ("time left
    /// for re-scheduling") is then worthless, so the total value is zero.
    pub fn total_value(&self, cfg: &PotentialConfig) -> f64 {
        if self.scheduling == 0.0 && self.energy == 0.0 {
            return 0.0;
        }
        cfg.w_assignment * self.assignment
            + cfg.w_scheduling * self.scheduling
            + cfg.w_energy * self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile};

    fn offer(tf: u32, width: f64, lead: u32) -> FlexOffer {
        FlexOffer::builder(1, 1)
            .earliest_start(TimeSlot(100))
            .time_flexibility(tf)
            .assignment_before(TimeSlot(100 - lead as i64))
            .profile(Profile::uniform(
                4,
                EnergyRange::new(1.0, 1.0 + width).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn sigmoid_shape() {
        assert!((sigmoid(0.0, 0.0, 1.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0, 0.0, 1.0) > 0.99);
        assert!(sigmoid(-10.0, 0.0, 1.0) < 0.01);
        // monotone
        assert!(sigmoid(1.0, 0.0, 2.0) > sigmoid(0.5, 0.0, 2.0));
    }

    #[test]
    fn potentials_in_unit_interval() {
        let cfg = PotentialConfig::default();
        let p = FlexibilityPotentials::compute(&offer(8, 0.5, 20), TimeSlot(50), &cfg);
        for v in [p.assignment, p.scheduling, p.energy] {
            assert!((0.0..=1.0).contains(&v), "potential {v}");
        }
    }

    #[test]
    fn zero_scheduling_flexibility_is_worthless() {
        let cfg = PotentialConfig::default();
        let p = FlexibilityPotentials::compute(&offer(0, 0.5, 20), TimeSlot(50), &cfg);
        assert_eq!(p.scheduling, 0.0);
        // but the offer "may still provide a benefit … if it offers Energy
        // flexibility"
        assert!(p.energy > 0.0);
    }

    #[test]
    fn zero_energy_flexibility_is_worthless() {
        let cfg = PotentialConfig::default();
        let p = FlexibilityPotentials::compute(&offer(8, 0.0, 20), TimeSlot(50), &cfg);
        assert_eq!(p.energy, 0.0);
        assert!(p.scheduling > 0.0);
    }

    #[test]
    fn more_flexibility_more_value() {
        let cfg = PotentialConfig::default();
        let lo = FlexibilityPotentials::compute(&offer(2, 0.1, 4), TimeSlot(90), &cfg);
        let hi = FlexibilityPotentials::compute(&offer(24, 2.0, 50), TimeSlot(40), &cfg);
        assert!(hi.total_value(&cfg) > lo.total_value(&cfg));
    }

    #[test]
    fn day_ahead_horizon_caps_assignment_value() {
        let cfg = PotentialConfig::default();
        // deadline is slot -100; both observation times leave more than
        // the 96-slot day-ahead horizon of assignment flexibility
        let a = FlexibilityPotentials::compute(&offer(8, 0.5, 200), TimeSlot(-250), &cfg);
        let b = FlexibilityPotentials::compute(&offer(8, 0.5, 200), TimeSlot(-350), &cfg);
        assert!((a.assignment - b.assignment).abs() < 1e-12);
    }

    #[test]
    fn expired_offer_has_zero_assignment_potential_tail() {
        let cfg = PotentialConfig::default();
        let o = offer(8, 0.5, 4);
        let p = FlexibilityPotentials::compute(&o, TimeSlot(100), &cfg);
        // assignment flexibility is 0 ⇒ sigmoid far below midpoint
        assert!(p.assignment < 0.01);
    }

    #[test]
    fn weighted_sum_uses_weights() {
        let cfg = PotentialConfig {
            w_assignment: 0.0,
            w_scheduling: 1.0,
            w_energy: 0.0,
            ..PotentialConfig::default()
        };
        let p = FlexibilityPotentials {
            assignment: 0.9,
            scheduling: 0.5,
            energy: 0.9,
        };
        assert!((p.total_value(&cfg) - 0.5).abs() < 1e-12);
    }
}
