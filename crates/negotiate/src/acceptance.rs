//! Flex-offer acceptance (paper §7).
//!
//! "Before taking a flex-offer into account the BRP has to decide whether
//! it is potentially profitable. The BRP must be able to reject a
//! flex-offer that generate\[s\] loss or can not be processed in time. …
//! the rejection of a flex-offer does not imply that the Prosumer is not
//! allowed to produce or consume the energy based on his tariff."

use crate::pricing::PreExecutionPricing;
use mirabel_core::{FlexOffer, SlotSpan, TimeSlot};
use serde::{Deserialize, Serialize};

/// Why an offer was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectionReason {
    /// The assignment deadline leaves less than the BRP's minimum
    /// processing time.
    TooLateToProcess,
    /// The estimated flexibility value is below the profitability floor.
    NotProfitable,
}

/// The BRP's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AcceptanceDecision {
    /// Taken into the aggregation/scheduling pool; carries the estimated
    /// value in `[0, 1]`.
    Accept {
        /// Estimated pre-execution flexibility value.
        value: f64,
    },
    /// Waived — the prosumer falls back to the open contract.
    Reject(RejectionReason),
}

impl AcceptanceDecision {
    /// Whether the offer was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, AcceptanceDecision::Accept { .. })
    }
}

/// Acceptance policy: minimum processing lead time and value floor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AcceptancePolicy {
    /// Pricing scheme supplying the value estimate.
    pub pricing: PreExecutionPricing,
    /// "The BRP needs a minimum of time to process a flex-offer": slots
    /// required between `now` and the assignment deadline.
    pub min_processing_slots: SlotSpan,
    /// Minimum estimated value for the offer to be profitable.
    pub min_value: f64,
}

impl Default for AcceptancePolicy {
    fn default() -> AcceptancePolicy {
        AcceptancePolicy {
            pricing: PreExecutionPricing::default(),
            min_processing_slots: 4, // one hour
            min_value: 0.05,
        }
    }
}

impl AcceptancePolicy {
    /// Decide on `offer` at time `now`.
    pub fn decide(&self, offer: &FlexOffer, now: TimeSlot) -> AcceptanceDecision {
        if offer.assignment_flexibility(now) < self.min_processing_slots {
            return AcceptanceDecision::Reject(RejectionReason::TooLateToProcess);
        }
        let value = self.pricing.value(offer, now);
        if value < self.min_value {
            return AcceptanceDecision::Reject(RejectionReason::NotProfitable);
        }
        AcceptanceDecision::Accept { value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile};

    fn offer(tf: u32, width: f64, deadline: i64) -> FlexOffer {
        FlexOffer::builder(1, 1)
            .earliest_start(TimeSlot(100))
            .time_flexibility(tf)
            .assignment_before(TimeSlot(deadline))
            .profile(Profile::uniform(
                4,
                EnergyRange::new(1.0, 1.0 + width).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn accepts_flexible_timely_offer() {
        let policy = AcceptancePolicy::default();
        let d = policy.decide(&offer(24, 1.0, 90), TimeSlot(40));
        assert!(d.is_accepted());
        if let AcceptanceDecision::Accept { value } = d {
            assert!(value >= policy.min_value);
        }
    }

    #[test]
    fn rejects_late_offer() {
        let policy = AcceptancePolicy::default();
        // deadline at 90, now 88: only 2 slots < 4 required
        let d = policy.decide(&offer(24, 1.0, 90), TimeSlot(88));
        assert_eq!(
            d,
            AcceptanceDecision::Reject(RejectionReason::TooLateToProcess)
        );
        // already expired
        let d2 = policy.decide(&offer(24, 1.0, 90), TimeSlot(95));
        assert!(!d2.is_accepted());
    }

    #[test]
    fn rejects_worthless_offer() {
        let policy = AcceptancePolicy::default();
        let d = policy.decide(&offer(0, 0.0, 90), TimeSlot(40));
        assert_eq!(
            d,
            AcceptanceDecision::Reject(RejectionReason::NotProfitable)
        );
    }

    #[test]
    fn boundary_processing_time_accepted() {
        let policy = AcceptancePolicy::default();
        // exactly min_processing_slots of lead
        let d = policy.decide(&offer(24, 1.0, 90), TimeSlot(86));
        assert!(d.is_accepted());
    }
}
