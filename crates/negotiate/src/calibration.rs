//! Calibrated value estimation (paper §7 Research Directions).
//!
//! "Due to the complexity of the planning and the large number of
//! flex-offers it is necessary to develop better heuristics to estimate
//! the value of individual flex-offers before execution time."
//!
//! The BRP observes, after execution, the realized profit each flex-offer
//! contributed. Regressing realized profit on the three pre-execution
//! flexibility potentials yields data-driven weights for the
//! [`crate::potential::PotentialConfig`] — closing the loop between the
//! two pricing schemes of §7.

use crate::potential::{FlexibilityPotentials, PotentialConfig};
use serde::{Deserialize, Serialize};

/// One settled flex-offer: potentials seen before execution, profit
/// realized after.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueObservation {
    /// Pre-execution flexibility potentials.
    pub potentials: FlexibilityPotentials,
    /// Realized profit for the BRP (EUR; may be negative).
    pub realized_profit: f64,
}

/// Least-squares weights `(w_assignment, w_scheduling, w_energy)` fitted
/// through the origin (an offer with zero potentials has zero value).
///
/// Solves the 3×3 ridge-regularized normal equations by Gaussian
/// elimination with partial pivoting. Returns `None` with fewer than
/// three observations or a singular system.
pub fn calibrate_weights(observations: &[ValueObservation], ridge: f64) -> Option<(f64, f64, f64)> {
    if observations.len() < 3 {
        return None;
    }
    let mut xtx = [[0.0f64; 3]; 3];
    let mut xty = [0.0f64; 3];
    for obs in observations {
        let x = [
            obs.potentials.assignment,
            obs.potentials.scheduling,
            obs.potentials.energy,
        ];
        for i in 0..3 {
            xty[i] += x[i] * obs.realized_profit;
            for j in 0..3 {
                xtx[i][j] += x[i] * x[j];
            }
        }
    }
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += ridge.max(0.0);
    }
    solve3(xtx, xty).map(|w| (w[0], w[1], w[2]))
}

/// Gaussian elimination with partial pivoting for a 3×3 system.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..3 {
            let f = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (k, cell) in a[row].iter_mut().enumerate().skip(col) {
                *cell -= f * pivot_row[k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut sum = b[row];
        for k in row + 1..3 {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// Install calibrated weights into a potential configuration, clamping
/// negatives to zero (a dimension that *loses* money should simply not be
/// rewarded) and normalizing the sum to 1 so values remain comparable
/// across calibration rounds.
pub fn apply_calibration(cfg: &mut PotentialConfig, weights: (f64, f64, f64)) {
    let wa = weights.0.max(0.0);
    let ws = weights.1.max(0.0);
    let we = weights.2.max(0.0);
    let sum = wa + ws + we;
    if sum <= 0.0 {
        return;
    }
    cfg.w_assignment = wa / sum;
    cfg.w_scheduling = ws / sum;
    cfg.w_energy = we / sum;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn observations(
        true_w: (f64, f64, f64),
        noise: f64,
        n: usize,
        seed: u64,
    ) -> Vec<ValueObservation> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let p = FlexibilityPotentials {
                    assignment: rng.gen_range(0.0..1.0),
                    scheduling: rng.gen_range(0.0..1.0),
                    energy: rng.gen_range(0.0..1.0),
                };
                let profit = true_w.0 * p.assignment
                    + true_w.1 * p.scheduling
                    + true_w.2 * p.energy
                    + rng.gen_range(-noise..=noise);
                ValueObservation {
                    potentials: p,
                    realized_profit: profit,
                }
            })
            .collect()
    }

    #[test]
    fn recovers_true_weights_noise_free() {
        let obs = observations((0.5, 2.0, 1.0), 0.0, 50, 1);
        let (wa, ws, we) = calibrate_weights(&obs, 1e-9).unwrap();
        assert!((wa - 0.5).abs() < 1e-6, "wa {wa}");
        assert!((ws - 2.0).abs() < 1e-6, "ws {ws}");
        assert!((we - 1.0).abs() < 1e-6, "we {we}");
    }

    #[test]
    fn robust_to_noise() {
        let obs = observations((0.2, 1.5, 0.8), 0.1, 500, 2);
        let (wa, ws, we) = calibrate_weights(&obs, 1e-6).unwrap();
        assert!((wa - 0.2).abs() < 0.1);
        assert!((ws - 1.5).abs() < 0.1);
        assert!((we - 0.8).abs() < 0.1);
    }

    #[test]
    fn too_few_observations() {
        let obs = observations((1.0, 1.0, 1.0), 0.0, 2, 3);
        assert!(calibrate_weights(&obs, 1e-9).is_none());
    }

    #[test]
    fn degenerate_observations_rejected() {
        // all-zero potentials: singular system even with many rows
        let obs: Vec<ValueObservation> = (0..10)
            .map(|_| ValueObservation {
                potentials: FlexibilityPotentials {
                    assignment: 0.0,
                    scheduling: 0.0,
                    energy: 0.0,
                },
                realized_profit: 1.0,
            })
            .collect();
        assert!(calibrate_weights(&obs, 0.0).is_none());
    }

    #[test]
    fn apply_normalizes_and_clamps() {
        let mut cfg = PotentialConfig::default();
        apply_calibration(&mut cfg, (2.0, 2.0, -1.0));
        assert!((cfg.w_assignment - 0.5).abs() < 1e-12);
        assert!((cfg.w_scheduling - 0.5).abs() < 1e-12);
        assert_eq!(cfg.w_energy, 0.0);
        // all-negative: unchanged
        let before = cfg;
        apply_calibration(&mut cfg, (-1.0, -1.0, -1.0));
        assert_eq!(cfg.w_assignment, before.w_assignment);
    }

    #[test]
    fn calibration_improves_value_ranking() {
        // A world where only scheduling flexibility makes money; the
        // default (hand-set) weights misrank offers, calibrated weights
        // rank them by true value.
        let obs = observations((0.0, 1.0, 0.0), 0.02, 300, 5);
        let mut cfg = PotentialConfig::default();
        apply_calibration(&mut cfg, calibrate_weights(&obs, 1e-6).unwrap());
        assert!(cfg.w_scheduling > 0.9);
        assert!(cfg.w_assignment < 0.05);
        assert!(cfg.w_energy < 0.05);
    }
}
