//! Shared helpers for the experiment harness binaries.
//!
//! Each binary under `src/bin/` regenerates one figure of the paper's §9
//! evaluation (see `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for recorded outputs). All binaries honour the
//! `MIRABEL_QUICK=1` environment variable to run a reduced-size version.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Whether the quick (reduced-size) mode was requested.
pub fn quick_mode() -> bool {
    std::env::var("MIRABEL_QUICK").is_ok_and(|v| v == "1" || v == "true")
}

/// The paper's evolutionary algorithm: memetic (delta-scored) local
/// refinement disabled, so figure reproductions measure the published EA
/// rather than the improved default, mirroring
/// `GreedyScheduler::run_with_polish(.., 0)` for the greedy series.
pub fn paper_ea() -> mirabel_schedule::EvolutionaryScheduler {
    mirabel_schedule::EvolutionaryScheduler {
        config: mirabel_schedule::EaConfig {
            local_search_moves: 0,
            ..mirabel_schedule::EaConfig::default()
        },
    }
}

/// Time one closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Least-squares line fit `y = a·x + b` over paired samples.
pub fn line_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (0.0, sy / n);
    }
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    (a, b)
}

/// Print a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Resample a best-so-far trajectory onto a fixed time grid: for each
/// grid point, the best value achieved at or before it (NaN before the
/// first sample).
pub fn resample_trajectory(
    points: &[(f64, f64)], // (elapsed seconds, best value)
    grid: &[f64],
) -> Vec<f64> {
    grid.iter()
        .map(|&t| {
            points
                .iter()
                .take_while(|(pt, _)| *pt <= t)
                .last()
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_fit_exact() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let (a, b) = line_fit(&xs, &ys);
        assert!((a - 2.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn line_fit_degenerate() {
        assert_eq!(line_fit(&[], &[]), (0.0, 0.0));
        let (a, b) = line_fit(&[2.0, 2.0], &[5.0, 7.0]);
        assert_eq!(a, 0.0);
        assert_eq!(b, 6.0);
    }

    #[test]
    fn trajectory_resampling() {
        let traj = [(0.5, 10.0), (1.5, 5.0), (3.0, 2.0)];
        let grid = [0.0, 1.0, 2.0, 4.0];
        let r = resample_trajectory(&traj, &grid);
        assert!(r[0].is_nan());
        assert_eq!(r[1], 10.0);
        assert_eq!(r[2], 5.0);
        assert_eq!(r[3], 2.0);
    }

    #[test]
    fn timed_returns_result() {
        let (v, s) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }
}
