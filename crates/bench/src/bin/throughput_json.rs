//! `BENCH_throughput.json` emitter: the perf-trajectory artifact.
//!
//! Measures sustained planning rounds/sec of the full 3-level hierarchy
//! (the same workload as the `simulation_throughput` criterion group's
//! `rounds` rows) at 1 k and 10 k prosumers across pool widths 1/2/4/8,
//! and writes the grid as JSON — CI uploads it per commit so the
//! width-scaling curve of the concurrent node drivers is tracked over
//! time, not eyeballed. Plans are bit-identical across the width rows
//! (the `concurrent_drivers` suite pins that); the run asserts it here
//! too by comparing each row's assignment count against width 1.
//!
//! ```sh
//! cargo run --release -p mirabel-bench --bin throughput_json [out.json]
//! ```

use mirabel_core::exec::Pool;
use mirabel_edms::{simulate, SimulationConfig};
use std::fmt::Write as _;
use std::time::Instant;

const CYCLES: usize = 2;
const WIDTHS: [usize; 4] = [1, 2, 4, 8];
const PROSUMER_GRID: [usize; 2] = [1_000, 10_000];

fn workload(prosumers: usize, width: usize) -> SimulationConfig {
    let brps = 4;
    SimulationConfig {
        brps,
        prosumers_per_brp: prosumers / brps,
        cycles: CYCLES,
        offers_per_prosumer: 1,
        use_tso: true,
        budget_evaluations: 2_000,
        seed: 42,
        pool: Pool::new(width),
        ..SimulationConfig::default()
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut rows = String::new();
    for prosumers in PROSUMER_GRID {
        let mut assigned_at_width_1 = None;
        for width in WIDTHS {
            let cfg = workload(prosumers, width);
            // One warm-up round (pool spawn, allocator warm-up), then
            // the timed run.
            let warm = simulate(cfg.clone());
            let start = Instant::now();
            let report = simulate(cfg);
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(warm, report, "same config, different report");
            match assigned_at_width_1 {
                None => assigned_at_width_1 = Some(report.assigned),
                Some(expect) => assert_eq!(
                    report.assigned, expect,
                    "width {width} changed the outcome at {prosumers} prosumers"
                ),
            }
            let rounds_per_sec = CYCLES as f64 / secs;
            println!(
                "{prosumers:>6} prosumers  width {width}: {rounds_per_sec:.3} rounds/sec \
                 ({secs:.2}s for {CYCLES} rounds, {} assigned)",
                report.assigned
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            write!(
                rows,
                "    {{\"prosumers\": {prosumers}, \"width\": {width}, \
                 \"seconds\": {secs:.6}, \"rounds_per_sec\": {rounds_per_sec:.6}}}"
            )
            .expect("writing to a String cannot fail");
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"simulation_throughput\",\n  \"cycles_per_run\": {CYCLES},\n  \
         \"host_cores\": {cores},\n  \"rows\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    println!("wrote {out_path}");
}
