//! The §6 optimality probe.
//!
//! "In a preliminary experiment with 10 flex-offers without energy
//! constraints it took almost three hours to explore all (almost 850
//! million) sensible solutions and find the optimal schedule."
//!
//! This harness (1) reports the search-space size of a paper-scale
//! 10-offer instance, and (2) *actually* enumerates a reduced instance,
//! comparing the heuristics' results to the true optimum.
//!
//! ```sh
//! cargo run --release -p mirabel-bench --bin exhaustive
//! ```

use mirabel_bench::{paper_ea, timed};
use mirabel_core::{EnergyRange, FlexOffer, Profile, TimeSlot};
use mirabel_schedule::{
    search_space_size, Budget, ExhaustiveScheduler, GreedyScheduler, MarketPrices,
    SchedulingProblem,
};

fn fixed_offer(id: u64, tf: u32, dur: u32, kwh: f64) -> FlexOffer {
    FlexOffer::builder(id, 1)
        .earliest_start(TimeSlot(0))
        .time_flexibility(tf)
        .profile(Profile::uniform(dur, EnergyRange::fixed(kwh)))
        .build()
        .unwrap()
}

fn instance(n: usize, tf: u32) -> SchedulingProblem {
    let horizon = 96usize;
    let offers: Vec<FlexOffer> = (0..n as u64)
        .map(|i| fixed_offer(i, tf, 2, 1.0 + (i % 3) as f64))
        .collect();
    let baseline: Vec<f64> = (0..horizon)
        .map(|i| {
            let x = i as f64 / horizon as f64;
            -6.0 * (-((x - 0.4) * (x - 0.4)) / 0.01).exp()
        })
        .collect();
    SchedulingProblem::new(
        TimeSlot(0),
        baseline,
        offers,
        MarketPrices::flat(horizon, 1.0, 0.0, 0.0),
        vec![0.2; horizon],
    )
    .unwrap()
}

fn main() {
    println!("# §6 optimality probe — exhaustive enumeration\n");

    // Paper-scale instance: 10 offers, flexibility chosen so the space is
    // ~8.5e8 like the paper's "almost 850 million sensible solutions".
    let paper = instance(10, 7); // (7+1)^10 ≈ 1.07e9
    println!(
        "paper-scale instance: 10 offers, tf=7 → search space {:.3e} start combinations \
         (paper: ~8.5e8, almost three hours) — not enumerated here",
        search_space_size(&paper)
    );

    // Reduced instance that we do enumerate exactly.
    let reduced = instance(6, 5); // 6^6 = 46 656 combinations
    println!(
        "\nreduced instance: 6 offers, tf=5 → {} combinations",
        search_space_size(&reduced)
    );
    let (exact, secs) = timed(|| {
        ExhaustiveScheduler::default()
            .run(&reduced)
            .expect("space within limits")
    });
    println!(
        "exhaustive optimum: {:.4} EUR in {:.2} s ({} evaluations)",
        exact.cost.total(),
        secs,
        exact.evaluations
    );

    for (name, result) in [
        (
            // Paper's pure restart greedy (polish disabled).
            "randomized greedy",
            GreedyScheduler.run_with_polish(&reduced, Budget::evaluations(20_000), 1, 0),
        ),
        (
            // Paper's EA (memetic refinement disabled).
            "evolutionary",
            paper_ea().run(&reduced, Budget::evaluations(20_000), 1),
        ),
    ] {
        let gap = result.cost.total() - exact.cost.total();
        println!(
            "{name:<18} {:.4} EUR (gap to optimum: {:+.4}, {} evaluations)",
            result.cost.total(),
            gap,
            result.evaluations
        );
        assert!(gap >= -1e-9, "heuristic beat the optimum — bug!");
    }
}
