//! Figure 4(b): forecast accuracy vs forecast horizon.
//!
//! "We measured the forecast accuracy according to different forecast
//! horizons … we used a supply data set, which contains wind energy data
//! … the supply data set shows a much higher decrease in accuracy with
//! increasing horizon." Demand and wind data sets are replaced by the
//! synthetic generators (DESIGN.md §3).
//!
//! As in MIRABEL, the HWT smoothing parameters are estimated per series
//! (random-restart Nelder-Mead) before forecasting — wind relies on the
//! AR(1) persistence term, demand on the seasonal components.
//!
//! ```sh
//! cargo run --release -p mirabel-bench --bin fig4b
//! ```

use mirabel_bench::quick_mode;
use mirabel_core::{TimeSlot, SLOTS_PER_DAY};
use mirabel_forecast::{
    Budget, Estimator, ForecastModel, HwtModel, Objective, RandomRestartNelderMead,
};
use mirabel_timeseries::{smape, DemandGenerator, TimeSeries, WindGenerator};

/// Fit HWT with estimated parameters on `train`.
fn fitted_model(train: &TimeSeries, eval_budget: usize, seed: u64) -> HwtModel {
    let warmup = train.len().saturating_sub(3 * SLOTS_PER_DAY as usize);
    let template = HwtModel::daily_weekly();
    let bounds = template.param_bounds();
    let t = template.clone();
    let series = train.clone();
    let objective = Objective::new(bounds, move |p: &[f64]| {
        let mut m = t.clone();
        m.set_params(p);
        m.evaluate(&series, warmup)
    });
    let result = RandomRestartNelderMead::default().estimate(
        &objective,
        Budget::evaluations(eval_budget),
        seed,
    );
    let mut model = template;
    model.set_params(&result.best_params);
    model.fit(train);
    model
}

fn main() {
    let day = SLOTS_PER_DAY as usize;
    let (train_days, repetitions, eval_budget) = if quick_mode() {
        (21, 2, 60)
    } else {
        (28, 5, 250)
    };
    let horizon_days = 4;

    println!("# Figure 4(b) — accuracy (SMAPE) vs forecast horizon, HWT with estimated parameters");
    println!(
        "training: {train_days} days, {repetitions} repetitions, {eval_budget} estimation evaluations per model\n"
    );

    // From 15 minutes out to 4 days, log-ish spacing like the paper's axis.
    let grid: Vec<usize> = vec![1, 4, 8, 16, 32, day / 2, day, 2 * day, 3 * day, 4 * day];
    let mut demand_err = vec![0.0; grid.len()];
    let mut supply_err = vec![0.0; grid.len()];

    for rep in 0..repetitions as u64 {
        let n = (train_days + horizon_days) * day;
        let demand = DemandGenerator::default().generate(TimeSlot(0), n, 100 + rep);
        let wind = WindGenerator::default().generate(TimeSlot(0), n, 200 + rep);
        let split = TimeSlot((train_days * day) as i64);
        let (d_train, d_test) = demand.split_at_slot(split);
        let (w_train, w_test) = wind.split_at_slot(split);

        let dm = fitted_model(&d_train, eval_budget, 10 + rep);
        let wm = fitted_model(&w_train, eval_budget, 20 + rep);
        let df = dm.forecast(horizon_days * day);
        let wf = wm.forecast(horizon_days * day);

        for (i, &h) in grid.iter().enumerate() {
            demand_err[i] += smape(&d_test.values()[..h], &df[..h]) / repetitions as f64;
            supply_err[i] += smape(&w_test.values()[..h], &wf[..h]) / repetitions as f64;
        }
    }

    println!(
        "| {:>12} | {:>14} | {:>13} |",
        "horizon days", "demand SMAPE", "supply SMAPE"
    );
    println!("|-------------:|---------------:|--------------:|");
    for (i, &h) in grid.iter().enumerate() {
        println!(
            "| {:>12.3} | {:>14.4} | {:>13.4} |",
            h as f64 / day as f64,
            demand_err[i],
            supply_err[i]
        );
    }

    let d_ratio = demand_err.last().unwrap() / demand_err.first().unwrap().max(1e-9);
    let s_ratio = supply_err.last().unwrap() / supply_err.first().unwrap().max(1e-9);
    println!("\nerror growth 15 min → 4 days: demand ×{d_ratio:.1}, supply ×{s_ratio:.1}");
    println!(
        "supply/demand error at 4 days: {:.1}x  (paper: supply degrades much faster \
         with the horizon; demand stays accurate for hours-scale horizons)",
        supply_err.last().unwrap() / demand_err.last().unwrap().max(1e-9)
    );
}
