//! §6 Research Directions: "the complexity of the search space heavily
//! depends also on the start time flexibilities of the included
//! flex-offers. As this influence was not researched in detail yet, it
//! shall be explored in the future."
//!
//! Sweeps the time flexibility of a fixed 200-offer instance and reports
//! the search-space size plus the cost both metaheuristics reach under a
//! fixed evaluation budget.
//!
//! ```sh
//! cargo run --release -p mirabel-bench --bin flex_sweep
//! ```

use mirabel_bench::{paper_ea, quick_mode};
use mirabel_core::{EnergyRange, FlexOffer, Profile, TimeSlot};
use mirabel_schedule::{
    evaluate, search_space_size, Budget, GreedyScheduler, MarketPrices, SchedulingProblem, Solution,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 96-slot instance where every offer has exactly `tf` slots of start
/// flexibility (placed so it always fits).
fn instance(n: usize, tf: u32, seed: u64) -> SchedulingProblem {
    let horizon = 96usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let offers: Vec<FlexOffer> = (0..n as u64)
        .map(|i| {
            let dur = rng.gen_range(1..=3u32);
            let es = rng.gen_range(0..(horizon as u32 - dur - tf));
            let base = rng.gen_range(0.5..3.0);
            FlexOffer::builder(i, 1)
                .earliest_start(TimeSlot(es as i64))
                .time_flexibility(tf)
                .profile(Profile::uniform(
                    dur,
                    EnergyRange::new(base, base * 1.3).unwrap(),
                ))
                .build()
                .unwrap()
        })
        .collect();
    let baseline: Vec<f64> = (0..horizon)
        .map(|i| {
            let x = i as f64 / horizon as f64;
            8.0 * ((2.0 * std::f64::consts::PI * x).sin() - 0.3)
        })
        .collect();
    SchedulingProblem::new(
        TimeSlot(0),
        baseline,
        offers,
        MarketPrices::flat(horizon, 0.09, 0.02, 5.0),
        vec![0.2; horizon],
    )
    .unwrap()
}

fn main() {
    let n = 200;
    let budget = if quick_mode() { 20_000 } else { 100_000 };

    println!("# §6 research direction — start-time flexibility vs problem difficulty");
    println!("{n} offers, {budget} evaluations per algorithm\n");
    println!(
        "| {:>4} | {:>12} | {:>14} | {:>12} | {:>12} | {:>12} |",
        "tf", "log10(space)", "baseline EUR", "greedy EUR", "EA EUR", "improvement"
    );
    println!(
        "|-----:|-------------:|---------------:|-------------:|-------------:|-------------:|"
    );

    for tf in [0u32, 2, 4, 8, 16, 32, 64] {
        let problem = instance(n, tf, 9);
        let space = search_space_size(&problem).log10();
        let baseline = evaluate(&problem, &Solution::baseline(&problem)).total();
        // Paper's pure restart greedy (polish disabled).
        let greedy = GreedyScheduler
            .run_with_polish(&problem, Budget::evaluations(budget), 1, 0)
            .cost
            .total();
        // Paper's EA (memetic refinement disabled).
        let ea = paper_ea()
            .run(&problem, Budget::evaluations(budget), 1)
            .cost
            .total();
        let improvement = 1.0 - greedy.min(ea) / baseline.max(1e-9);
        println!(
            "| {:>4} | {:>12.1} | {:>14.2} | {:>12.2} | {:>12.2} | {:>11.1}% |",
            tf,
            space,
            baseline,
            greedy,
            ea,
            improvement * 100.0
        );
    }

    println!(
        "\nMore flexibility explodes the search space (log-linear in tf) yet \
         *reduces* the reachable cost: flexibility is what the scheduler \
         monetizes, while zero-flexibility instances leave it nothing to do."
    );
}
