//! `BENCH_federation.json` emitter: the multi-region perf artifact.
//!
//! Drives the same seeded prosumer population twice — once as a
//! monolithic single hierarchy, once sharded into 4 regions under the
//! federation's exchange layer — with byte metering on, and writes
//! wall-clock plus the **exchange-traffic ratio** (cross-border bus
//! bytes / intra-region wire bytes) as JSON for CI's per-commit
//! artifact. On the single-core CI container a wall-clock speedup from
//! sharding is not observable, so the *tracked assertions* are the
//! structural ones instead:
//!
//! * width determinism — a small federated configuration produces a
//!   bit-identical `FederationReport` at pool widths 1, 2 and 4;
//! * the exchange stays a vanishing fraction of the wire: ratio < 1%
//!   at the headline configuration.
//!
//! ```sh
//! cargo run --release -p mirabel-bench --bin federation_json \
//!     [out.json] [total_prosumers]
//! ```
//!
//! `total_prosumers` defaults to 1 000 000 (the paper-scale 4 × 250k
//! round, what CI runs). Exchange traffic is population-independent
//! (the export cap bounds it), so the < 1% ratio assertion needs a
//! population of a few hundred thousand or more — pass a smaller one
//! only for local smoke where the panic is acceptable feedback.

use mirabel_core::exec::Pool;
use mirabel_edms::federation::{Federation, FederationConfig};
use mirabel_edms::{simulate, SimulationConfig};
use std::fmt::Write as _;
use std::time::Instant;

const REGIONS: usize = 4;
const TOTAL_BRPS: usize = 8;

fn base_sim(brps: usize, per_brp: usize, seed: u64) -> SimulationConfig {
    SimulationConfig {
        brps,
        prosumers_per_brp: per_brp,
        cycles: 1,
        offers_per_prosumer: 1,
        use_tso: true,
        budget_evaluations: 2_000,
        refine_fraction: 0.05,
        seed,
        pool: Pool::global().clone(),
        ..SimulationConfig::default()
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_federation.json".to_string());
    let total: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("total_prosumers must be a number"))
        .unwrap_or(1_000_000);
    let per_brp = total / TOTAL_BRPS;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // --- Width determinism at small scale ---------------------------
    // Cheap enough to run every time, and it is the guarantee the
    // headline numbers lean on: pool width moves wall-clock only.
    let small = |width: usize| FederationConfig {
        regions: REGIONS,
        sim: SimulationConfig {
            pool: Pool::new(width),
            ..base_sim(TOTAL_BRPS / REGIONS, 50, 42)
        },
        meter_bytes: true,
        ..FederationConfig::default()
    };
    let w1 = Federation::run(small(1));
    let w2 = Federation::run(small(2));
    let w4 = Federation::run(small(4));
    assert_eq!(w1, w2, "federation report diverged between widths 1 and 2");
    assert_eq!(w2, w4, "federation report diverged between widths 2 and 4");
    println!("width determinism: widths 1/2/4 bit-identical");

    // --- Monolith: 1 hierarchy over the full population -------------
    let mut mono_cfg = base_sim(TOTAL_BRPS, per_brp, 1_000_000);
    mono_cfg.pool = Pool::global().clone();
    let start = Instant::now();
    let mono = simulate(mono_cfg);
    let mono_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        mono.assigned + mono.fallbacks,
        mono.offers_submitted,
        "monolith broke offer conservation"
    );
    println!(
        "monolith 1 x {total}: {mono_secs:.2}s, {} offers",
        mono.offers_submitted
    );

    // --- Federation: 4 regions over the same population --------------
    let fed_cfg = FederationConfig {
        regions: REGIONS,
        sim: base_sim(TOTAL_BRPS / REGIONS, per_brp, 1_000_000),
        meter_bytes: true,
        ..FederationConfig::default()
    };
    let start = Instant::now();
    let fed = Federation::run(fed_cfg);
    let fed_secs = start.elapsed().as_secs_f64();
    let fed_offers: usize = fed.regions.iter().map(|r| r.offers_submitted).sum();
    for (i, region) in fed.regions.iter().enumerate() {
        assert_eq!(
            region.assigned + region.fallbacks,
            region.offers_submitted,
            "region {i} broke offer conservation"
        );
        assert_eq!(region.phantom_offers, 0, "region {i} left phantom offers");
        assert_eq!(region.energy_violations, 0, "region {i} violated energy");
    }
    assert!(fed.exchange.converged, "exchange failed to converge");
    let ratio = fed.exchange_byte_ratio();
    assert!(
        ratio < 0.01,
        "exchange traffic must stay under 1% of intra-region bytes, got {ratio}"
    );
    println!(
        "federation {REGIONS} x {}: {fed_secs:.2}s, {fed_offers} offers, \
         exchange ratio {ratio:.6} ({} bus bytes / {} intra bytes)",
        total / REGIONS,
        fed.exchange.bus.bytes_sent,
        fed.intra_region_bytes()
    );

    let mut json = String::new();
    write!(
        json,
        "{{\n  \"bench\": \"federation_throughput\",\n  \
         \"host_cores\": {cores},\n  \
         \"total_prosumers\": {total},\n  \
         \"regions\": {REGIONS},\n  \
         \"monolith_seconds\": {mono_secs:.6},\n  \
         \"federation_seconds\": {fed_secs:.6},\n  \
         \"exchange_bus_bytes\": {},\n  \
         \"intra_region_bytes\": {},\n  \
         \"exchange_byte_ratio\": {ratio:.8},\n  \
         \"exchange_deltas_published\": {},\n  \
         \"exchange_matched_kwh\": {:.3},\n  \
         \"exchange_converged\": {},\n  \
         \"width_determinism\": true\n}}\n",
        fed.exchange.bus.bytes_sent,
        fed.intra_region_bytes(),
        fed.exchange.deltas_published,
        fed.exchange.matched_kwh,
        fed.exchange.converged,
    )
    .expect("writing to a String cannot fail");
    std::fs::write(&out_path, &json).expect("write BENCH_federation.json");
    println!("wrote {out_path}");
}
