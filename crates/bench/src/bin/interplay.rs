//! §8 component interplay: the two-dimensional aggregation/scheduling
//! optimization.
//!
//! "How do we choose the best aggregation result size (number of
//! aggregated flex-offers), and the corresponding aggregation parameters,
//! to preserve as much as possible of the flexibility, while still
//! keeping the overall run time within the limits?"
//!
//! Sweeps the aggregation tolerance, then gives every configuration the
//! same wall-clock budget split across aggregation + scheduling, and
//! prints the end-to-end outcome.
//!
//! ```sh
//! cargo run --release -p mirabel-bench --bin interplay
//! ```

use mirabel_aggregate::{AggregationParams, AggregationPipeline};
use mirabel_bench::{quick_mode, timed};
use mirabel_core::{FlexOfferGenerator, GeneratorConfig, TimeSlot, SLOTS_PER_DAY};
use mirabel_schedule::{Budget, GreedyScheduler, MarketPrices, SchedulingProblem};
use std::time::Duration;

fn main() {
    let offers_n = if quick_mode() { 20_000 } else { 100_000 };
    let total_seconds = if quick_mode() { 4.0 } else { 15.0 };
    let day = SLOTS_PER_DAY as usize;

    let offers: Vec<_> = FlexOfferGenerator::new(
        GeneratorConfig {
            window_start: TimeSlot(0),
            window_slots: (day / 2) as u32,
            max_time_flexibility: (day / 4) as u32,
            max_slices: 2,
            max_slice_duration: 2,
            assignment_lead: (1, 4),
            ..GeneratorConfig::default()
        },
        88,
    )
    .take(offers_n)
    .collect();

    let baseline: Vec<f64> = (0..day)
        .map(|i| {
            let x = i as f64 / day as f64;
            400.0 * (0.6 - 1.6 * (-((x - 0.5) * (x - 0.5)) / 0.02).exp())
        })
        .collect();

    println!("# §8 interplay — aggregation level vs end-to-end outcome");
    println!("{offers_n} offers, {total_seconds:.0} s total budget per configuration\n");
    println!(
        "| {:>10} | {:>10} | {:>11} | {:>12} | {:>10} | {:>10} | {:>12} |",
        "tolerance", "aggregates", "compression", "tf-loss/offer", "agg s", "sched s", "cost EUR"
    );
    println!("|-----------:|-----------:|------------:|--------------:|-----------:|-----------:|-------------:|");

    for tol in [0u32, 2, 4, 8, 16, 32, 64] {
        let params = if tol == 0 {
            AggregationParams::p0()
        } else {
            AggregationParams::p3(tol, tol)
        };
        let (pipeline, agg_secs) =
            timed(|| AggregationPipeline::from_scratch(params, None, offers.iter().cloned()));
        let report = pipeline.report();
        let end = TimeSlot(day as i64);
        let macros: Vec<_> = pipeline
            .macro_offers()
            .into_iter()
            .filter(|m| m.latest_end() <= end)
            .collect();
        let problem = SchedulingProblem::new(
            TimeSlot(0),
            baseline.clone(),
            macros,
            MarketPrices::flat(day, 0.09, 0.02, 150.0),
            vec![0.2; day],
        )
        .expect("macros fit");
        let sched_budget = (total_seconds - agg_secs).max(0.2);
        // Paper's pure restart greedy (polish disabled), like the other
        // figure-reproduction binaries.
        let (result, sched_secs) = timed(|| {
            GreedyScheduler.run_with_polish(
                &problem,
                Budget::time(Duration::from_secs_f64(sched_budget)),
                5,
                0,
            )
        });
        println!(
            "| {:>10} | {:>10} | {:>11.1} | {:>13.2} | {:>10.2} | {:>10.2} | {:>12.2} |",
            tol,
            report.aggregate_count,
            report.compression_ratio(),
            report.loss_per_offer(),
            agg_secs,
            sched_secs,
            result.cost.total(),
        );
    }

    println!(
        "\n(paper §8: more aggressive aggregation costs somewhat more aggregation \
         time and flexibility, but is \"(much) more than offset by the savings in \
         scheduling time\" — the cost column should bottom out at a mid-level \
         tolerance.)"
    );
}
