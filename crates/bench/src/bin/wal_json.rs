//! `BENCH_wal.json` emitter: the durability-cost artifact.
//!
//! Measures the event-sourced wire's two costs and writes them as JSON
//! for CI to upload per commit:
//!
//! * **append overhead** — the 1 k-prosumer hierarchy with per-BRP
//!   write-ahead logs off vs on, reported as rounds/sec plus the
//!   percentage overhead. The acceptance bar is ≤10%; the run also
//!   asserts the WAL changes *nothing observable* — plan signatures
//!   with logging on are bit-identical to logging off.
//! * **recovery latency** — crash-restart of a BRP from a log holding
//!   1 k / 10 k offers (snapshot + replay tail at the default
//!   compaction cadence), reported as milliseconds per recovery.
//!
//! ```sh
//! cargo run --release -p mirabel-bench --bin wal_json [out.json]
//! ```

use mirabel_core::{EnergyRange, FlexOffer, NodeId, Profile, TimeSlot};
use mirabel_edms::{
    simulate, BrpConfig, BrpNode, Envelope, MemWalStore, Message, NodeWal, SimulationConfig,
    WalConfig, WalStore,
};
use std::fmt::Write as _;
use std::time::Instant;

const CYCLES: usize = 6;
const BRP_ID: NodeId = NodeId(1);

fn hierarchy(wal: Option<WalConfig>) -> SimulationConfig {
    let brps = 4;
    SimulationConfig {
        brps,
        prosumers_per_brp: 1_000 / brps,
        cycles: CYCLES,
        offers_per_prosumer: 1,
        use_tso: true,
        budget_evaluations: 2_000,
        seed: 42,
        wal,
        ..SimulationConfig::default()
    }
}

/// Median-of-five timed runs (after one warm-up) of the workload.
fn time_simulation(cfg: &SimulationConfig) -> (f64, mirabel_edms::SimulationReport) {
    let report = simulate(cfg.clone());
    let mut secs: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            let rerun = simulate(cfg.clone());
            let s = start.elapsed().as_secs_f64();
            assert_eq!(rerun, report, "same config, different report");
            s
        })
        .collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    (secs[2], report)
}

fn populated_store(offers: usize) -> (Box<dyn WalStore>, usize, u64) {
    let mut brp = BrpNode::new(BRP_ID, None, BrpConfig::default());
    brp.attach_wal(NodeWal::in_memory(WalConfig::default()));
    let now = TimeSlot(0);
    for i in 0..offers as u64 {
        let offer = FlexOffer::builder(i, 500 + i)
            .earliest_start(TimeSlot(10 + (i % 50) as i64))
            .time_flexibility(8)
            .assignment_before(TimeSlot(5))
            .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap();
        brp.handle(
            Envelope::new(NodeId(500 + i), BRP_ID, now, Message::SubmitOffer(offer)),
            now,
        );
    }
    let (pool_size, digest) = (brp.pool_size(), brp.pool_digest());
    (
        brp.take_wal().expect("WAL attached").into_store(),
        pool_size,
        digest,
    )
}

fn clone_store(master: &mut Box<dyn WalStore>) -> Box<dyn WalStore> {
    let (snapshot, frames) = master.load().expect("in-memory load cannot fail");
    let mut copy = MemWalStore::new();
    if let Some(snap) = snapshot {
        copy.install_snapshot(&snap).expect("in-memory install");
    }
    for frame in frames {
        copy.append(&frame).expect("in-memory append");
    }
    Box::new(copy)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_wal.json".to_string());

    // Append overhead: logging must be cheap and observably inert.
    let (off_secs, off_report) = time_simulation(&hierarchy(None));
    let (on_secs, on_report) = time_simulation(&hierarchy(Some(WalConfig::default())));
    assert_eq!(
        on_report.plan_signatures, off_report.plan_signatures,
        "attaching WALs changed the plans"
    );
    let overhead_pct = (on_secs / off_secs - 1.0) * 100.0;
    println!(
        "append overhead: wal_off {off_secs:.3}s, wal_on {on_secs:.3}s \
         ({overhead_pct:+.1}% for {CYCLES} rounds at 1k prosumers)"
    );

    // Recovery latency: median-of-five crash-restarts per log size.
    let mut recovery_rows = String::new();
    for offers in [1_000usize, 10_000] {
        let (mut master, pool_size, digest) = populated_store(offers);
        let mut ms: Vec<f64> = (0..5)
            .map(|_| {
                let store = clone_store(&mut master);
                let start = Instant::now();
                let (node, out) = BrpNode::recover(
                    BRP_ID,
                    None,
                    BrpConfig::default(),
                    store,
                    WalConfig::default(),
                    TimeSlot(0),
                )
                .expect("in-memory recovery cannot fail");
                let elapsed = start.elapsed().as_secs_f64() * 1_000.0;
                assert!(out.is_empty(), "local-mode recovery emits nothing");
                assert_eq!(node.pool_size(), pool_size);
                assert_eq!(node.pool_digest(), digest);
                elapsed
            })
            .collect();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = ms[2];
        println!("recovery: {offers} offers in {median:.2} ms (pool {pool_size})");
        if !recovery_rows.is_empty() {
            recovery_rows.push_str(",\n");
        }
        write!(
            recovery_rows,
            "    {{\"offers\": {offers}, \"recover_ms\": {median:.4}}}"
        )
        .expect("writing to a String cannot fail");
    }

    let json = format!(
        "{{\n  \"bench\": \"wal_overhead\",\n  \"cycles_per_run\": {CYCLES},\n  \
         \"wal_off_seconds\": {off_secs:.6},\n  \"wal_on_seconds\": {on_secs:.6},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \"recovery\": [\n{recovery_rows}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_wal.json");
    println!("wrote {out_path}");
}
