//! Figure 4(a): estimator error development over time.
//!
//! "We compared the error development of three important global search
//! algorithms … using the Holt-Winters Triple Seasonal Exponential
//! Smoothing (HWT) … on the publicly available UK energy demand dataset."
//! The UK data set is replaced by the synthetic UK-style demand generator
//! (DESIGN.md §3).
//!
//! ```sh
//! cargo run --release -p mirabel-bench --bin fig4a
//! ```

use mirabel_bench::{quick_mode, resample_trajectory};
use mirabel_core::{TimeSlot, SLOTS_PER_DAY};
use mirabel_forecast::{
    Budget, Estimator, ForecastModel, HwtModel, Objective, RandomRestartNelderMead, RandomSearch,
    SimulatedAnnealing,
};
use mirabel_timeseries::DemandGenerator;
use std::time::Duration;

fn main() {
    let seconds = if quick_mode() { 3.0 } else { 20.0 };
    let train_days = 21;
    let series =
        DemandGenerator::default().generate(TimeSlot(0), train_days * SLOTS_PER_DAY as usize, 2010);
    let warmup = 14 * SLOTS_PER_DAY as usize;

    let template = HwtModel::daily_weekly();
    let bounds = template.param_bounds();
    let objective = Objective::new(bounds, move |p: &[f64]| {
        let mut m = template.clone();
        m.set_params(p);
        m.evaluate(&series, warmup)
    });

    let estimators: Vec<(&str, Box<dyn Estimator>)> = vec![
        (
            "Random Restart Nelder Mead",
            Box::new(RandomRestartNelderMead::default()),
        ),
        (
            "Simulated Annealing",
            Box::new(SimulatedAnnealing::default()),
        ),
        ("Random Search", Box::new(RandomSearch)),
    ];

    println!(
        "# Figure 4(a) — accuracy (SMAPE) vs estimation time, HWT on synthetic UK-style demand"
    );
    println!("budget: {seconds:.0} s per estimator\n");

    let grid: Vec<f64> = (1..=20).map(|i| seconds * i as f64 / 20.0).collect();
    let mut table: Vec<(String, Vec<f64>, f64, usize)> = Vec::new();
    for (name, est) in estimators {
        let result = est.estimate(
            &objective,
            Budget::time(Duration::from_secs_f64(seconds)),
            7,
        );
        let points: Vec<(f64, f64)> = result
            .trajectory
            .iter()
            .map(|p| (p.elapsed.as_secs_f64(), p.best_error))
            .collect();
        table.push((
            name.to_string(),
            resample_trajectory(&points, &grid),
            result.best_error,
            result.evaluations,
        ));
    }

    print!("| {:>7} |", "time s");
    for (name, _, _, _) in &table {
        print!(" {name:>28} |");
    }
    println!();
    print!("|--------:|");
    for _ in &table {
        print!("-----------------------------:|");
    }
    println!();
    for (i, t) in grid.iter().enumerate() {
        print!("| {t:>7.1} |");
        for (_, series, _, _) in &table {
            if series[i].is_nan() {
                print!(" {:>28} |", "-");
            } else {
                print!(" {:>28.6} |", series[i]);
            }
        }
        println!();
    }

    println!("\n## Final results");
    for (name, _, best, evals) in &table {
        println!("{name:<28} best SMAPE {best:.6}  ({evals} objective evaluations)");
    }
    let best = table
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("non-empty");
    println!(
        "\nwinner: {} (paper: Random Restart Nelder Mead has a slight advantage; all converge to similar accuracy)",
        best.0
    );
}
