//! Figure 6 (a–d): scheduling convergence, EA vs randomized greedy.
//!
//! "Both scheduling algorithms were run five times on four different
//! intra-day scheduling scenarios with 10, 100, 1000 and 10000 aggregated
//! flex-offers. The averaged results are presented."
//!
//! Time budgets scale with instance size like the paper's panels
//! (1 s / 5 s / 60 s / 15 min there; defaults here are shorter — set
//! `MIRABEL_FIG6_FULL=1` for the paper-scale budgets).
//!
//! ```sh
//! cargo run --release -p mirabel-bench --bin fig6
//! ```

use mirabel_bench::{paper_ea, quick_mode, resample_trajectory};
use mirabel_schedule::{scenario, Budget, GreedyScheduler, ScenarioConfig};
use std::time::Duration;

fn main() {
    let full = std::env::var("MIRABEL_FIG6_FULL").is_ok_and(|v| v == "1");
    // (offer count, seconds) per panel.
    let panels: Vec<(usize, f64)> = if full {
        vec![(10, 1.0), (100, 5.0), (1_000, 60.0), (10_000, 900.0)]
    } else if quick_mode() {
        vec![(10, 0.3), (100, 1.0), (1_000, 3.0), (10_000, 10.0)]
    } else {
        vec![(10, 1.0), (100, 5.0), (1_000, 20.0), (10_000, 60.0)]
    };
    let runs = 5;

    println!("# Figure 6 — schedule cost vs time, EA vs randomized greedy search (GS)");
    println!("{runs} runs per algorithm per panel, averaged\n");

    for (panel, (n, seconds)) in panels.iter().enumerate() {
        let letter = (b'a' + panel as u8) as char;
        println!("## Figure 6({letter}) — {n} aggregated flex-offers, {seconds:.0} s budget");
        let grid: Vec<f64> = (1..=10).map(|i| seconds * i as f64 / 10.0).collect();
        let mut ea_avg = vec![0.0; grid.len()];
        let mut gs_avg = vec![0.0; grid.len()];
        let mut ea_final = 0.0;
        let mut gs_final = 0.0;

        for run in 0..runs as u64 {
            let problem = scenario(ScenarioConfig {
                offer_count: *n,
                seed: 60 + run,
                ..ScenarioConfig::default()
            });
            let budget = Budget::time(Duration::from_secs_f64(*seconds));

            // Memetic refinement disabled: the figure reproduces the
            // paper's EA, matching the pure greedy series below.
            let ea = paper_ea().run(&problem, budget, 1_000 + run);
            // Polish disabled: the figure reproduces the paper's pure
            // restart greedy, not the delta-polished variant.
            let gs = GreedyScheduler.run_with_polish(&problem, budget, 2_000 + run, 0);

            let to_points = |traj: &[mirabel_schedule::TrajectoryPoint]| {
                traj.iter()
                    .map(|p| (p.elapsed.as_secs_f64(), p.best_cost))
                    .collect::<Vec<_>>()
            };
            let ea_curve = resample_trajectory(&to_points(&ea.trajectory), &grid);
            let gs_curve = resample_trajectory(&to_points(&gs.trajectory), &grid);
            for i in 0..grid.len() {
                // Before the first recorded point, carry the first value.
                let first_ea = ea
                    .trajectory
                    .first()
                    .map(|p| p.best_cost)
                    .unwrap_or(f64::NAN);
                let first_gs = gs
                    .trajectory
                    .first()
                    .map(|p| p.best_cost)
                    .unwrap_or(f64::NAN);
                ea_avg[i] += if ea_curve[i].is_nan() {
                    first_ea
                } else {
                    ea_curve[i]
                } / runs as f64;
                gs_avg[i] += if gs_curve[i].is_nan() {
                    first_gs
                } else {
                    gs_curve[i]
                } / runs as f64;
            }
            ea_final += ea.cost.total() / runs as f64;
            gs_final += gs.cost.total() / runs as f64;
        }

        println!(
            "| {:>8} | {:>14} | {:>14} |",
            "time s", "EA cost EUR", "GS cost EUR"
        );
        println!("|---------:|---------------:|---------------:|");
        for (i, t) in grid.iter().enumerate() {
            println!("| {:>8.2} | {:>14.2} | {:>14.2} |", t, ea_avg[i], gs_avg[i]);
        }
        println!("final: EA {ea_final:.2} EUR, GS {gs_final:.2} EUR\n");
    }
    println!(
        "(paper: both algorithms converge quickly at 10–1000 offers; at 10000 \
         convergence slows markedly — \"a proper degree of flex-offer aggregation \
         needs to be performed\")"
    );
}
