//! `BENCH_degraded.json` emitter: the islanded-mode cost artifact.
//!
//! Measures what degraded operation costs and writes it as JSON for CI
//! to upload per commit:
//!
//! * **islanding overhead** — the same 256-prosumer hierarchy run with
//!   a reliable wire vs with one BRP partitioned from the TSO for every
//!   cycle (instant-trip detector horizons, so the cut BRP runs its
//!   local degraded pass each round), reported as seconds per run plus
//!   the percentage delta. The islanded run must still assign offers —
//!   provisional flexibility instead of dropped flexibility.
//! * **islanded planning latency** — the local degraded planning pass
//!   in isolation: one `Down` BRP preparing a window over its own pool
//!   of 100 / 1 000 offers, reported as milliseconds per pass.
//!
//! ```sh
//! cargo run --release -p mirabel-bench --bin degraded_json [out.json]
//! ```

use mirabel_core::{EnergyRange, FlexOffer, NodeId, Profile, TimeSlot};
use mirabel_edms::chaos::partition_between;
use mirabel_edms::{
    simulate, BrpConfig, BrpNode, ChaosPlan, Envelope, LinkHealthConfig, LinkState, Message,
    SimulationConfig,
};
use mirabel_schedule::MarketPrices;
use std::fmt::Write as _;
use std::time::Instant;

const CYCLES: usize = 4;
const TSO: NodeId = NodeId(9_999);
const BRP_ID: NodeId = NodeId(1);

/// Detector horizons that trip on the first poll: silence `>= 0` is
/// already `Down`, so a partitioned BRP islands immediately.
fn instant_island() -> LinkHealthConfig {
    LinkHealthConfig {
        suspect_after: 0,
        down_after: 0,
        retransmit_base: 1_000_000,
        max_retransmits: 0,
    }
}

fn hierarchy(chaos: ChaosPlan, link_health: LinkHealthConfig) -> SimulationConfig {
    SimulationConfig {
        brps: 4,
        prosumers_per_brp: 64,
        cycles: CYCLES,
        offers_per_prosumer: 2,
        use_tso: true,
        budget_evaluations: 2_000,
        seed: 42,
        chaos,
        link_health,
        ..SimulationConfig::default()
    }
}

/// Median-of-five timed runs (after one warm-up) of the workload.
fn time_simulation(cfg: &SimulationConfig) -> (f64, mirabel_edms::SimulationReport) {
    let report = simulate(cfg.clone());
    let mut secs: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            let rerun = simulate(cfg.clone());
            let s = start.elapsed().as_secs_f64();
            assert_eq!(rerun, report, "same config, different report");
            s
        })
        .collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    (secs[2], report)
}

/// A BRP already in `Down` with `offers` pooled, ready for islanded
/// planning passes.
fn islanded_brp(offers: usize) -> BrpNode {
    let config = BrpConfig {
        forward_to_tso: true,
        link_health: instant_island(),
        ..BrpConfig::default()
    };
    let mut brp = BrpNode::new(BRP_ID, Some(TSO), config);
    let now = TimeSlot(0);
    for i in 0..offers as u64 {
        let offer = FlexOffer::builder(i, 500 + i)
            .earliest_start(TimeSlot(100 + (i % 50) as i64))
            .time_flexibility(8)
            .assignment_before(TimeSlot(90))
            .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap();
        brp.handle(
            Envelope::new(NodeId(500 + i), BRP_ID, now, Message::SubmitOffer(offer)),
            now,
        );
    }
    brp
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_degraded.json".to_string());

    // Islanding overhead: connected vs one BRP cut off every cycle.
    let (connected_secs, connected) = time_simulation(&hierarchy(
        ChaosPlan::reliable(),
        LinkHealthConfig::default(),
    ));
    let (islanded_secs, islanded) = time_simulation(&hierarchy(
        ChaosPlan::reliable().phase(partition_between(0, CYCLES, BRP_ID, TSO)),
        instant_island(),
    ));
    assert!(
        islanded.assigned > 0,
        "islanded hierarchy must still assign flexibility"
    );
    let delta_pct = (islanded_secs / connected_secs - 1.0) * 100.0;
    println!(
        "islanding overhead: connected {connected_secs:.3}s \
         (assigned {}), islanded {islanded_secs:.3}s (assigned {}) \
         ({delta_pct:+.1}% for {CYCLES} rounds at 256 prosumers)",
        connected.assigned, islanded.assigned
    );

    // Islanded planning latency: median-of-five local passes per pool
    // size (prepare only — commit would drain the pool between runs).
    let mut planning_rows = String::new();
    for offers in [100usize, 1_000] {
        let mut brp = islanded_brp(offers);
        let mut ms: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                let (out, report) = brp.prepare_plan(
                    TimeSlot(4),
                    TimeSlot(96),
                    vec![-1.0; 96],
                    MarketPrices::flat(96, 0.08, 0.03, 100.0),
                    vec![0.2; 96],
                );
                let elapsed = start.elapsed().as_secs_f64() * 1_000.0;
                assert!(out.is_empty(), "islanded prepares ship nothing upward");
                assert_eq!(brp.link_state(), LinkState::Down);
                assert!(report.eligible_macro > 0, "the pool must be eligible");
                brp.take_islanded_rounds();
                elapsed
            })
            .collect();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = ms[2];
        println!("islanded planning: {offers} offers in {median:.2} ms");
        if !planning_rows.is_empty() {
            planning_rows.push_str(",\n");
        }
        write!(
            planning_rows,
            "    {{\"offers\": {offers}, \"plan_ms\": {median:.4}}}"
        )
        .expect("writing to a String cannot fail");
    }

    let json = format!(
        "{{\n  \"bench\": \"degraded_mode\",\n  \"cycles_per_run\": {CYCLES},\n  \
         \"connected_seconds\": {connected_secs:.6},\n  \
         \"islanded_seconds\": {islanded_secs:.6},\n  \
         \"islanding_delta_pct\": {delta_pct:.3},\n  \
         \"connected_assigned\": {},\n  \"islanded_assigned\": {},\n  \
         \"islanded_planning\": [\n{planning_rows}\n  ]\n}}\n",
        connected.assigned, islanded.assigned
    );
    std::fs::write(&out_path, &json).expect("write BENCH_degraded.json");
    println!("wrote {out_path}");
}
