//! Figure 5 (a–d): the aggregation experiment.
//!
//! "We used a flex-offer dataset with around 800000 artificially
//! generated flex-offers. Only flex-offer inserts and no deletes were
//! used in the experiment. The bin-packer was disabled. Two aggregation
//! parameters and four different their value combinations were used."
//!
//! Panels:
//! * (a) aggregated flex-offer count vs flex-offer count, P0–P3
//! * (b) cumulative aggregation time vs flex-offer count
//! * (c) time-flexibility loss per flex-offer
//! * (d) disaggregation time vs aggregation time + linear fit
//!
//! ```sh
//! cargo run --release -p mirabel-bench --bin fig5            # full 800k
//! MIRABEL_QUICK=1 cargo run --release -p mirabel-bench --bin fig5
//! ```

use mirabel_aggregate::{AggregationParams, AggregationPipeline, FlexOfferUpdate};
use mirabel_bench::{line_fit, quick_mode, timed};
use mirabel_core::{AggregateId, FlexOfferGenerator, ScheduledFlexOffer};

fn main() {
    let total: usize = if quick_mode() { 100_000 } else { 800_000 };
    let steps = 8;
    let step = total / steps;

    // The paper's parameter combinations: tolerances in slots.
    let params = [
        ("P0", AggregationParams::p0()),
        ("P1", AggregationParams::p1(16)),
        ("P2", AggregationParams::p2(16)),
        ("P3", AggregationParams::p3(16, 16)),
    ];

    println!(
        "# Figure 5 — aggregation experiment ({total} flex-offers, inserts only, bin-packer off)\n"
    );
    println!(
        "| {:>7} | {:>4} | {:>12} | {:>11} | {:>10} | {:>12} | {:>12} |",
        "offers", "par", "aggregates", "compression", "agg time s", "loss/offer", "disagg time s"
    );
    println!("|--------:|-----:|-------------:|------------:|-----------:|-------------:|--------------:|");

    let mut agg_times: Vec<f64> = Vec::new();
    let mut disagg_times: Vec<f64> = Vec::new();

    for (name, p) in params {
        let offers: Vec<_> = FlexOfferGenerator::with_seed(2012).take(total).collect();
        let mut pipeline = AggregationPipeline::new(p, None);
        let mut cumulative = 0.0;
        for (i, chunk) in offers.chunks(step).enumerate() {
            let updates: Vec<_> = chunk.iter().cloned().map(FlexOfferUpdate::Insert).collect();
            let (_, secs) = timed(|| pipeline.apply(updates));
            cumulative += secs;

            let count = (i + 1) * step;
            let report = pipeline.report();

            // Panel (d): disaggregate every current aggregate once
            // (schedule at earliest start, mid energy).
            let (_, disagg_secs) = timed(|| {
                let mut micro = 0usize;
                for agg in pipeline.aggregates() {
                    let offer = agg.to_flex_offer().expect("valid");
                    let schedule = ScheduledFlexOffer::at_fraction(&offer, agg.earliest_start, 0.5);
                    micro += pipeline
                        .disaggregate(AggregateId(agg.id.value()), &schedule)
                        .expect("disaggregation requirement")
                        .len();
                }
                micro
            });

            println!(
                "| {:>7} | {:>4} | {:>12} | {:>11.2} | {:>10.3} | {:>12.4} | {:>13.3} |",
                count,
                name,
                report.aggregate_count,
                report.compression_ratio(),
                cumulative,
                report.loss_per_offer(),
                disagg_secs,
            );
            agg_times.push(cumulative);
            disagg_times.push(disagg_secs);
        }
        println!("|---|---|---|---|---|---|---|");
    }

    let (a, b) = line_fit(&agg_times, &disagg_times);
    let mean_ratio: f64 = agg_times
        .iter()
        .zip(&disagg_times)
        .filter(|(agg, _)| **agg > 0.0)
        .map(|(agg, dis)| dis / agg)
        .sum::<f64>()
        / agg_times.len() as f64;
    println!("\n## Figure 5(d) relationship");
    println!("line fit: disaggregation_time = {a:.3} * aggregation_time + {b:.3}");
    println!(
        "mean disaggregation/aggregation ratio: {mean_ratio:.3}  (paper: ~1/3, fit 0.36x − 0.68)"
    );
}
