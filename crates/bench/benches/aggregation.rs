//! Criterion micro-benches behind Figure 5: aggregation and
//! disaggregation throughput per parameter combination.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mirabel_aggregate::{AggregationParams, AggregationPipeline};
use mirabel_core::{AggregateId, FlexOfferGenerator, ScheduledFlexOffer};

fn aggregation(c: &mut Criterion) {
    let offers: Vec<_> = FlexOfferGenerator::with_seed(1).take(20_000).collect();
    let mut group = c.benchmark_group("fig5_aggregate_20k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(offers.len() as u64));
    for (name, params) in [
        ("P0", AggregationParams::p0()),
        ("P1", AggregationParams::p1(16)),
        ("P2", AggregationParams::p2(16)),
        ("P3", AggregationParams::p3(16, 16)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &params, |b, &p| {
            b.iter(|| AggregationPipeline::from_scratch(p, None, offers.iter().cloned()))
        });
    }
    group.finish();
}

fn disaggregation(c: &mut Criterion) {
    let offers: Vec<_> = FlexOfferGenerator::with_seed(1).take(20_000).collect();
    let pipeline = AggregationPipeline::from_scratch(AggregationParams::p3(16, 16), None, offers);
    let schedules: Vec<(AggregateId, ScheduledFlexOffer)> = pipeline
        .aggregates()
        .map(|a| {
            let o = a.to_flex_offer().unwrap();
            (
                AggregateId(a.id.value()),
                ScheduledFlexOffer::at_fraction(&o, a.earliest_start, 0.5),
            )
        })
        .collect();
    let mut group = c.benchmark_group("fig5_disaggregate_20k");
    group.sample_size(10);
    group.bench_function("all_aggregates", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for (id, s) in &schedules {
                n += pipeline.disaggregate(*id, s).unwrap().len();
            }
            n
        })
    });
    group.finish();
}

criterion_group!(benches, aggregation, disaggregation);
criterion_main!(benches);
