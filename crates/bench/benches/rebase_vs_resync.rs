//! Event-driven replanning bench: when a forecast update moves ≤10% of
//! the horizon slots, incremental replanning — `DeltaEvaluator::rebase`
//! on the *live* evaluator plus a scoped parallel multi-start repair —
//! must beat the traditional reaction: reconstruct the scheduling
//! problem, rebuild the evaluator (a full `resync()`), and run the same
//! multi-start repair unscoped.
//!
//! Both paths run an identical repair (K chains × M moves), so the
//! wall-clock gap isolates exactly what the event-driven pipeline saves:
//! no problem reconstruction, no O(offers × duration + horizon) resync,
//! and move proposals restricted to the offers that can reach the
//! changed slots. The saving grows linearly with offer count while the
//! rebase stays O(changed slots).
//!
//! A second group checks the multi-start *quality* claim on the fig6
//! scenario: best-of-K chains (same per-chain move budget, i.e. the same
//! wall-clock on idle cores) never loses to the single-chain result —
//! chain 0 shares the single chain's seed, so this holds by
//! construction and is asserted, not just reported.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mirabel_core::exec::Pool;
use mirabel_schedule::{
    repair_parallel, repair_scope, scenario, Budget, DeltaEvaluator, GreedyScheduler, RepairConfig,
    ScenarioConfig,
};

const CHAINS: usize = 4;
const MOVES_PER_CHAIN: usize = 1_000;

/// A small-delta forecast update: ~10% of the horizon moves (two
/// contiguous fronts), the rest stays put.
fn small_delta(baseline: &[f64]) -> (Vec<f64>, Vec<usize>) {
    let h = baseline.len();
    let changed: Vec<usize> = (h / 4..h / 4 + h / 20)
        .chain(3 * h / 4..3 * h / 4 + h / 20)
        .collect();
    let mut updated = baseline.to_vec();
    for (k, &t) in changed.iter().enumerate() {
        updated[t] += 1.0 + 0.2 * k as f64;
    }
    (updated, changed)
}

fn rebase_vs_resync(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebase_vs_resync");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let problem = scenario(ScenarioConfig {
            offer_count: n,
            seed: 1,
            ..ScenarioConfig::default()
        });
        let initial = GreedyScheduler.run(&problem, Budget::evaluations(20_000), 3);
        let (updated_baseline, changed) = small_delta(&problem.baseline_imbalance);
        let scope = repair_scope(&problem, &changed);
        let cfg = |seed| RepairConfig {
            chains: CHAINS,
            moves_per_chain: MOVES_PER_CHAIN,
            seed,
        };

        // Incremental path: the live evaluator is rebased in place
        // (O(changed) re-pricing), repaired by K scoped chains, then
        // rebased back so every iteration reacts to the same delta.
        group.bench_with_input(BenchmarkId::new("rebase_repair", n), &problem, |b, p| {
            let mut eval = DeltaEvaluator::new_owned(p.clone(), initial.solution.clone());
            let original = p.baseline_imbalance.clone();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                eval.rebase(&updated_baseline, &changed);
                let total = repair_parallel(&mut eval, &scope, cfg(seed), Pool::global());
                eval.rebase(&original, &changed);
                black_box(total)
            })
        });

        // Traditional path: reconstruct the problem with the new
        // baseline, rebuild the evaluator (full resync) and run the
        // *same* K-chain repair over all offers.
        let full_scope: Vec<usize> = (0..n).collect();
        group.bench_with_input(
            BenchmarkId::new("resync_reschedule", n),
            &problem,
            |b, p| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut updated = p.clone();
                    updated.baseline_imbalance = updated_baseline.clone();
                    let mut eval = DeltaEvaluator::new(&updated, initial.solution.clone());
                    black_box(repair_parallel(
                        &mut eval,
                        &full_scope,
                        cfg(seed),
                        Pool::global(),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn multi_start_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_start_repair_quality_fig6");
    group.sample_size(10);
    // The fig6 scenario size shared with the scheduling bench.
    let problem = scenario(ScenarioConfig {
        offer_count: 1_000,
        seed: 1,
        ..ScenarioConfig::default()
    });
    let initial = GreedyScheduler.run(&problem, Budget::evaluations(20_000), 3);
    let (updated_baseline, changed) = small_delta(&problem.baseline_imbalance);
    let scope = repair_scope(&problem, &changed);

    let repaired_cost = |chains: usize| {
        let mut eval = DeltaEvaluator::new_owned(problem.clone(), initial.solution.clone());
        eval.rebase(&updated_baseline, &changed);
        repair_parallel(
            &mut eval,
            &scope,
            RepairConfig {
                chains,
                moves_per_chain: MOVES_PER_CHAIN,
                seed: 9,
            },
            Pool::global(),
        )
    };
    let single = repaired_cost(1);
    let multi = repaired_cost(CHAINS);
    println!(
        "multi_start_repair_quality_fig6: single-chain cost {single:.3} EUR, \
         best-of-{CHAINS} cost {multi:.3} EUR (same per-chain move budget)"
    );
    assert!(
        multi <= single + 1e-9,
        "multi-start repair lost to the single chain: {multi} vs {single}"
    );

    // Wall-clock: K chains vs one chain at the same per-chain budget —
    // equal time on K idle cores, K× the exploration.
    for chains in [1usize, CHAINS] {
        group.bench_with_input(BenchmarkId::new("chains", chains), &chains, |b, &chains| {
            let mut eval = DeltaEvaluator::new_owned(problem.clone(), initial.solution.clone());
            let original = problem.baseline_imbalance.clone();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                eval.rebase(&updated_baseline, &changed);
                let total = repair_parallel(
                    &mut eval,
                    &scope,
                    RepairConfig {
                        chains,
                        moves_per_chain: MOVES_PER_CHAIN,
                        seed,
                    },
                    Pool::global(),
                );
                eval.rebase(&original, &changed);
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, rebase_vs_resync, multi_start_quality);
criterion_main!(benches);
