//! Million-offer aggregation scale benches: the paper's trader node
//! ingests more than 10⁶ micro flex-offers per day, so the pipeline must
//! (a) build aggregates from scratch at that volume, (b) absorb trickle
//! updates at a cost independent of the group size (delta-fold, not
//! re-fold), and (c) speed flushes up with worker threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mirabel_aggregate::{
    AggregatedFlexOffer, AggregationParams, AggregationPipeline, FlexOfferUpdate,
};
use mirabel_core::{
    AggregateId, EnergyRange, FlexOffer, FlexOfferGenerator, FlexOfferId, Profile, TimeSlot,
};

fn identical_offer(id: u64) -> FlexOffer {
    FlexOffer::builder(id, 1)
        .earliest_start(TimeSlot(10))
        .time_flexibility(8)
        .profile(Profile::uniform(4, EnergyRange::new(0.5, 2.0).unwrap()))
        .build()
        .unwrap()
}

/// From-scratch builds at 100 k and 10⁶ offers (generation included —
/// it is a small constant fraction of the fold).
fn from_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_scale_from_scratch");
    group.sample_size(3);
    for &n in &[100_000u64, 1_000_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                AggregationPipeline::from_scratch(
                    AggregationParams::p3(16, 16),
                    None,
                    FlexOfferGenerator::with_seed(1).take(n as usize),
                )
                .aggregate_count()
            })
        });
    }
    group.finish();
}

/// Single-offer trickle updates against groups of growing size: the
/// delta-fold makes the cost flat in the member count.
fn trickle(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_scale_trickle");
    group.sample_size(10);
    for &n in &[10u64, 100, 1_000, 10_000] {
        let mut pipeline = AggregationPipeline::from_scratch(
            AggregationParams::p0(),
            None,
            (0..n).map(identical_offer),
        );
        assert_eq!(pipeline.aggregate_count(), 1);
        let mut next = n;
        group.bench_with_input(BenchmarkId::new("insert_delete", n), &n, move |b, _| {
            b.iter(|| {
                pipeline.apply(vec![FlexOfferUpdate::Insert(identical_offer(next))]);
                pipeline.apply(vec![FlexOfferUpdate::Delete(FlexOfferId(next))]);
                next += 1;
            })
        });
    }
    // Reference: the pre-delta per-update cost — clone the member list
    // through the stream and re-fold it from scratch (compare against
    // `insert_delete/1000`; the acceptance bar is ≥10×).
    let members: Vec<FlexOffer> = (0..1_000).map(identical_offer).collect();
    group.bench_function("refold_reference/1000", move |b| {
        b.iter(|| {
            let cloned = members.to_vec();
            AggregatedFlexOffer::build(AggregateId(0), &cloned).member_count()
        })
    });
    group.finish();
}

/// Emission churn on huge groups: one member in, one member out of a
/// 10 k / 100 k-member aggregate. The delta *fold* was already O(Δ);
/// this pins the last O(members) leftover — the per-emission member-id
/// snapshot. With the chunked `MemberIds` the snapshot is a chunk-table
/// clone (O(members ⁄ 512) pointer bumps), so the curve must stay
/// near-flat from 10 k to 100 k members instead of growing 10×.
fn emission_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_scale_emission_churn");
    group.sample_size(10);
    for &n in &[10_000u64, 100_000] {
        let mut pipeline = AggregationPipeline::from_scratch(
            AggregationParams::p0(),
            None,
            (0..n).map(identical_offer),
        );
        assert_eq!(pipeline.aggregate_count(), 1);
        let mut next = n;
        group.bench_with_input(BenchmarkId::new("insert_delete", n), &n, move |b, _| {
            b.iter(|| {
                let out = pipeline.apply(vec![FlexOfferUpdate::Insert(identical_offer(next))]);
                assert_eq!(out.len(), 1);
                pipeline.apply(vec![FlexOfferUpdate::Delete(FlexOfferId(next))]);
                next += 1;
            })
        });
    }
    group.finish();
}

/// Shard-parallel flush: one churn batch touching 128 groups of 4 000
/// members each (one insert + one delete per group, a single flush),
/// folded on 1 vs 4 worker threads. The group-builder phase is
/// O(batch) and serial; the per-group fold + aggregate emission
/// dominates and shards cleanly by group hash. The emitted streams are
/// identical for any thread count; only wall-clock differs — on
/// single-core runners (CI containers are often pinned to one CPU) the
/// two series converge, since no thread count can add cycles there.
fn parallel_flush(c: &mut Criterion) {
    const GROUPS: u64 = 128;
    const MEMBERS: u64 = 4_000;
    let offer_in_group = |g: u64, i: u64| {
        FlexOffer::builder(g * 1_000_000 + i, 1)
            .earliest_start(TimeSlot((g * 100) as i64))
            .time_flexibility(8)
            .profile(Profile::uniform(16, EnergyRange::new(0.5, 2.0).unwrap()))
            .build()
            .unwrap()
    };
    let mut group = c.benchmark_group("aggregation_scale_flush_threads");
    group.sample_size(10);
    group.throughput(Throughput::Elements(GROUPS));
    for &threads in &[1usize, 4] {
        let mut p = AggregationPipeline::new(AggregationParams::p0(), None);
        p.set_flush_threads(threads);
        p.apply(
            (0..GROUPS)
                .flat_map(|g| (0..MEMBERS).map(move |i| offer_in_group(g, i)))
                .map(FlexOfferUpdate::Insert)
                .collect(),
        );
        assert_eq!(p.aggregate_count(), GROUPS as usize);
        let mut round = 0;
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            move |b, _| {
                b.iter(|| {
                    // Per group: retire one member, admit a replacement —
                    // one combined flush touching all 128 aggregates.
                    let mut batch = Vec::with_capacity(2 * GROUPS as usize);
                    for g in 0..GROUPS {
                        batch.push(FlexOfferUpdate::Delete(FlexOfferId(
                            g * 1_000_000 + round % MEMBERS,
                        )));
                        batch.push(FlexOfferUpdate::Insert(offer_in_group(g, MEMBERS + round)));
                    }
                    round += 1;
                    p.apply(batch)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    from_scratch,
    trickle,
    emission_churn,
    parallel_flush
);
criterion_main!(benches);
