//! Ablation: incremental vs from-scratch aggregation (paper §4:
//! "aggregated flex-offers can be incrementally updated to avoid a
//! from-scratch re-computation").
//!
//! A 20k-offer pool receives a small batch of updates; the incremental
//! pipeline touches only affected groups, the from-scratch baseline
//! rebuilds everything.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirabel_aggregate::{AggregationParams, AggregationPipeline, FlexOfferUpdate};
use mirabel_core::{FlexOffer, FlexOfferGenerator};

fn incremental_vs_scratch(c: &mut Criterion) {
    let pool: Vec<FlexOffer> = FlexOfferGenerator::with_seed(6).take(20_000).collect();
    let batch: Vec<FlexOffer> = FlexOfferGenerator::with_seed(7)
        .take(200)
        .enumerate()
        .map(|(i, o)| {
            // fresh ids above the pool's range
            FlexOffer::builder(100_000 + i as u64, o.owner().value())
                .kind(o.kind())
                .earliest_start(o.earliest_start())
                .latest_start(o.latest_start())
                .assignment_before(o.assignment_before())
                .profile(o.profile().clone())
                .unit_price(o.unit_price())
                .build()
                .unwrap()
        })
        .collect();
    let params = AggregationParams::p3(16, 16);

    let mut group = c.benchmark_group("ablation_incremental_200_updates_on_20k");
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::from_parameter("incremental"), &(), |b, _| {
        // Build once outside the measurement; measure only the batch.
        let mut pipeline = AggregationPipeline::from_scratch(params, None, pool.iter().cloned());
        b.iter(|| {
            let inserts: Vec<_> = batch.iter().cloned().map(FlexOfferUpdate::Insert).collect();
            pipeline.apply(inserts);
            let deletes: Vec<_> = batch
                .iter()
                .map(|o| FlexOfferUpdate::Delete(o.id()))
                .collect();
            pipeline.apply(deletes);
        })
    });

    group.bench_with_input(BenchmarkId::from_parameter("from_scratch"), &(), |b, _| {
        b.iter(|| {
            let all = pool.iter().cloned().chain(batch.iter().cloned());
            AggregationPipeline::from_scratch(params, None, all).aggregate_count()
        })
    });

    group.finish();
}

criterion_group!(benches, incremental_vs_scratch);
criterion_main!(benches);
