//! Level-3 incremental replanning vs from-scratch rebuilds.
//!
//! The acceptance bar of the unified node runtime: after a single BRP
//! delta or a forecast event, the TSO's replan cost must be O(changed) —
//! splice/rebase on the live evaluator plus a scoped repair — and beat a
//! full `prepare_plan` (problem reconstruction + scheduler run) at 1 k
//! and 10 k pooled macro offers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirabel_aggregate::{AggregationParams, FlexOfferUpdate};
use mirabel_core::{EnergyRange, FlexOffer, FlexOfferId, NodeId, Profile, TimeSlot};
use mirabel_edms::{Envelope, Message, RuntimeConfig, TsoNode};
use mirabel_schedule::MarketPrices;

const HORIZON: usize = 96;
const WINDOW: TimeSlot = TimeSlot(96);

fn macro_offer(id: u64, i: u64) -> FlexOffer {
    // Spread starts across the window; tf + dur always fits.
    let es = 96 + (i % 84) as i64;
    FlexOffer::builder(id, 1)
        .earliest_start(TimeSlot(es))
        .time_flexibility(6)
        .assignment_before(TimeSlot(es - 10))
        .profile(Profile::uniform(4, EnergyRange::new(0.5, 2.0).unwrap()))
        .build()
        .unwrap()
}

fn deltas(updates: Vec<FlexOfferUpdate>) -> Envelope {
    Envelope::new(
        NodeId(1),
        NodeId(99),
        TimeSlot(0),
        Message::MacroOfferDeltas(updates),
    )
}

fn pooled_tso(n: u64) -> TsoNode {
    let mut tso = TsoNode::with_config(
        NodeId(99),
        AggregationParams::p0(),
        RuntimeConfig {
            // The runtime's default planning budget (20 k evaluations)
            // for every pool size: what a node actually pays when it
            // reconstructs instead of replanning incrementally.
            repair_moves: 200,
            repair_chains: 2,
            ..RuntimeConfig::default()
        },
    );
    tso.handle(
        deltas(
            (0..n)
                .map(|i| FlexOfferUpdate::Insert(macro_offer(1_000_000 + i, i)))
                .collect(),
        ),
        TimeSlot(0),
    );
    tso
}

fn prices() -> MarketPrices {
    MarketPrices::flat(HORIZON, 0.08, 0.03, 1_000.0)
}

fn prepare(tso: &mut TsoNode, baseline: Vec<f64>) {
    tso.prepare_plan(TimeSlot(90), WINDOW, baseline, prices(), vec![0.2; HORIZON]);
}

/// Full rebuild: reconstruct the problem from the pool and re-run the
/// scheduler — what `TsoNode::plan` did before the unified runtime.
fn full_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("tso_replan_full_rebuild");
    group.sample_size(10);
    for &n in &[1_000u64, 10_000] {
        let mut tso = pooled_tso(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, move |b, _| {
            b.iter(|| prepare(&mut tso, vec![-2.0; HORIZON]))
        });
    }
    group.finish();
}

/// Incremental offer delta: one BRP insert+delete trickle spliced into
/// the live plan (O(duration) each) plus a scoped repair.
fn offer_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("tso_replan_offer_delta");
    group.sample_size(10);
    for &n in &[1_000u64, 10_000] {
        let mut tso = pooled_tso(n);
        prepare(&mut tso, vec![-2.0; HORIZON]);
        let mut next = n;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, move |b, _| {
            b.iter(|| {
                tso.handle(
                    deltas(vec![
                        FlexOfferUpdate::Insert(macro_offer(1_000_000 + next, next)),
                        FlexOfferUpdate::Delete(FlexOfferId(1_000_000 + next - n)),
                    ]),
                    TimeSlot(91),
                );
                next += 1;
            })
        });
    }
    group.finish();
}

/// Incremental forecast event: a 10-slot refinement rebased onto the
/// live evaluator plus a scoped repair — no problem reconstruction.
fn forecast_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("tso_replan_forecast_event");
    group.sample_size(10);
    for &n in &[1_000u64, 10_000] {
        let mut tso = pooled_tso(n);
        prepare(&mut tso, vec![-2.0; HORIZON]);
        let mut flip = 0.0f64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, move |b, _| {
            b.iter(|| {
                flip = 0.5 - flip;
                let mut forecast = vec![-2.0; HORIZON];
                for v in forecast.iter_mut().skip(40).take(10) {
                    *v += flip;
                }
                let event = mirabel_forecast::ForecastEvent {
                    subscription: 0,
                    forecast,
                    changed: vec![mirabel_forecast::SlotRange { start: 40, end: 50 }],
                    max_relative_change: 1.0,
                };
                tso.on_forecast_event(&event).expect("live plan")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, full_rebuild, offer_delta, forecast_event);
criterion_main!(benches);
