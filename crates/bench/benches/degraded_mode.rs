//! Degraded-mode economics: what islanding costs and what healing costs.
//!
//! Two groups anchor the islanded-BRP story:
//!
//! 1. `degraded_rounds` — the same small three-level hierarchy run
//!    `connected` (reliable wire) vs `islanded` (a BRP↔TSO partition
//!    spanning every cycle plus instant-trip detector horizons, so the
//!    cut BRP runs its local degraded pass each round). The delta is
//!    the price of local provisional balancing relative to
//!    TSO-coordinated planning — wire savings included.
//! 2. `islanded_planning` — the local pass in isolation: one islanded
//!    BRP planning its own pool of 100 / 1 000 offers. This is the
//!    latency a BRP adds to a round the moment its detector trips, and
//!    the number the `degraded_json` CI artifact tracks per commit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mirabel_core::{EnergyRange, NodeId, Profile, TimeSlot};
use mirabel_edms::chaos::partition_between;
use mirabel_edms::{
    simulate, BrpConfig, BrpNode, ChaosPlan, Envelope, LinkHealthConfig, LinkState, Message,
    SimulationConfig,
};
use mirabel_schedule::MarketPrices;

const CYCLES: usize = 4;
const TSO: NodeId = NodeId(9_999);

/// Detector horizons that trip on the first poll: silence `>= 0` is
/// already `Down`, so a partitioned BRP islands immediately.
fn instant_island() -> LinkHealthConfig {
    LinkHealthConfig {
        suspect_after: 0,
        down_after: 0,
        retransmit_base: 1_000_000,
        max_retransmits: 0,
    }
}

fn hierarchy(chaos: ChaosPlan, link_health: LinkHealthConfig) -> SimulationConfig {
    SimulationConfig {
        brps: 4,
        prosumers_per_brp: 64,
        cycles: CYCLES,
        offers_per_prosumer: 2,
        use_tso: true,
        budget_evaluations: 2_000,
        seed: 42,
        chaos,
        link_health,
        ..SimulationConfig::default()
    }
}

/// A BRP already in `Down` with `offers` pooled, ready for an islanded
/// planning pass.
fn islanded_brp(offers: usize) -> BrpNode {
    let config = BrpConfig {
        forward_to_tso: true,
        link_health: instant_island(),
        ..BrpConfig::default()
    };
    let mut brp = BrpNode::new(NodeId(1), Some(TSO), config);
    let now = TimeSlot(0);
    for i in 0..offers as u64 {
        let offer = mirabel_core::FlexOffer::builder(i, 500 + i)
            .earliest_start(TimeSlot(100 + (i % 50) as i64))
            .time_flexibility(8)
            .assignment_before(TimeSlot(90))
            .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap();
        brp.handle(
            Envelope::new(NodeId(500 + i), NodeId(1), now, Message::SubmitOffer(offer)),
            now,
        );
    }
    brp
}

fn degraded_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("degraded_rounds");
    group.sample_size(3);
    let cases = [
        (
            "connected",
            hierarchy(ChaosPlan::reliable(), LinkHealthConfig::default()),
        ),
        (
            "islanded",
            hierarchy(
                ChaosPlan::reliable().phase(partition_between(0, CYCLES, NodeId(1), TSO)),
                instant_island(),
            ),
        ),
    ];
    for (label, cfg) in cases {
        group.throughput(Throughput::Elements(CYCLES as u64));
        group.bench_with_input(BenchmarkId::new("256_prosumers", label), &cfg, |b, cfg| {
            b.iter(|| simulate(cfg.clone()).assigned)
        });
    }
    group.finish();
}

fn islanded_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("islanded_planning");
    group.sample_size(10);
    for &offers in &[100usize, 1_000] {
        let mut brp = islanded_brp(offers);
        group.throughput(Throughput::Elements(offers as u64));
        group.bench_with_input(BenchmarkId::new("offers", offers), &offers, |b, _| {
            b.iter(|| {
                // The prepare pass alone: commit would hand the offers to
                // prosumers and drain the pool between iterations.
                let (out, report) = brp.prepare_plan(
                    TimeSlot(4),
                    TimeSlot(96),
                    vec![-1.0; 96],
                    MarketPrices::flat(96, 0.08, 0.03, 100.0),
                    vec![0.2; 96],
                );
                assert!(out.is_empty(), "islanded prepares ship nothing upward");
                assert_eq!(brp.link_state(), LinkState::Down);
                brp.take_islanded_rounds();
                report.eligible_macro
            })
        });
    }
    group.finish();
}

criterion_group!(benches, degraded_rounds, islanded_planning);
criterion_main!(benches);
