//! Ablation: the optional bin-packer (paper §4).
//!
//! Cost of enabling the bin-packer on a population with many identical
//! offers (its target case) vs a diverse population (where it only adds
//! overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirabel_aggregate::{AggregationParams, AggregationPipeline, BinPackerConfig};
use mirabel_core::{EnergyRange, FlexOffer, FlexOfferGenerator, Profile, TimeSlot};

fn identical_offers(n: usize) -> Vec<FlexOffer> {
    (0..n as u64)
        .map(|i| {
            FlexOffer::builder(i, 1)
                .earliest_start(TimeSlot(10))
                .time_flexibility(8)
                .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
                .build()
                .unwrap()
        })
        .collect()
}

fn binpack(c: &mut Criterion) {
    let identical = identical_offers(5_000);
    let diverse: Vec<_> = FlexOfferGenerator::with_seed(4).take(5_000).collect();

    let mut group = c.benchmark_group("ablation_binpacker_5k");
    group.sample_size(10);
    for (pop_name, offers) in [("identical", &identical), ("diverse", &diverse)] {
        for (bp_name, bp) in [
            ("off", None),
            ("max50", Some(BinPackerConfig::max_members(50))),
        ] {
            group.bench_with_input(
                BenchmarkId::new(pop_name.to_string(), bp_name),
                &(offers, bp),
                |b, (offers, bp)| {
                    b.iter(|| {
                        AggregationPipeline::from_scratch(
                            AggregationParams::p0(),
                            *bp,
                            offers.iter().cloned(),
                        )
                        .aggregate_count()
                    })
                },
            );
        }
        // §4 Research Directions: bin-packing integrated into the
        // group-builder (one pass instead of two).
        group.bench_with_input(
            BenchmarkId::new(pop_name.to_string(), "integrated50"),
            offers,
            |b, offers| {
                b.iter(|| {
                    let mut p = AggregationPipeline::new_integrated(AggregationParams::p0(), 50);
                    p.apply(
                        offers
                            .iter()
                            .cloned()
                            .map(mirabel_aggregate::FlexOfferUpdate::Insert)
                            .collect(),
                    );
                    p.aggregate_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, binpack);
criterion_main!(benches);
