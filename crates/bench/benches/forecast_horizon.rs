//! Criterion bench behind Figure 4(b): model fit and multi-day forecast
//! cost for demand vs wind series, plus the incremental-update fast path
//! the paper's maintenance design relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirabel_core::{TimeSlot, SLOTS_PER_DAY};
use mirabel_forecast::{ForecastModel, HwtModel};
use mirabel_timeseries::{DemandGenerator, WindGenerator};

fn fit_and_forecast(c: &mut Criterion) {
    let n = 21 * SLOTS_PER_DAY as usize;
    let demand = DemandGenerator::default().generate(TimeSlot(0), n, 1);
    let wind = WindGenerator::default().generate(TimeSlot(0), n, 2);

    let mut group = c.benchmark_group("fig4b_hwt");
    group.sample_size(20);
    for (name, series) in [("demand", &demand), ("wind", &wind)] {
        group.bench_with_input(BenchmarkId::new("fit_21d", name), series, |b, s| {
            b.iter(|| {
                let mut m = HwtModel::daily_weekly();
                m.fit(s);
                m
            })
        });
    }
    let mut fitted = HwtModel::daily_weekly();
    fitted.fit(&demand);
    for days in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("forecast_days", days), &days, |b, &d| {
            b.iter(|| fitted.forecast(d * SLOTS_PER_DAY as usize))
        });
    }
    group.bench_function("incremental_update", |b| {
        let mut m = fitted.clone();
        b.iter(|| m.update(35_000.0))
    });
    group.finish();
}

criterion_group!(benches, fit_and_forecast);
criterion_main!(benches);
