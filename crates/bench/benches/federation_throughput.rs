//! Federated vs monolithic hierarchy throughput.
//!
//! The headline question of the multi-region layer: does sharding one
//! population into `N` regions — each a full hierarchy driven as one
//! `run_each` task, glued by the serial exchange splice — keep pace
//! with (or beat) the monolithic single-hierarchy run of the same
//! population? Regions share no mutable state, so past one core the
//! federated rows should close the gap; on a single-core box the splice
//! overhead is the entire difference, which is why the
//! `federation_json` emitter reports the exchange-traffic *ratio* as
//! the tracked bound rather than a speedup.
//!
//! Groups:
//!
//! 1. `split` — a fixed 1 k-prosumer population as 1, 2 and 4 regions
//!    on a width-4 pool, cycles/sec per split. The determinism suite
//!    pins that each region equals its solo twin; only the rate moves.
//! 2. `exchange_splice` — the serial splice in isolation: a federation
//!    cycle vs the sum of its regions' solo cycles would require
//!    cross-run timing, so instead the 4-region row at width 1 bounds
//!    splice + scheduling overhead against the 1-region row.
//!
//! The release-scale grid (4 × 250k vs 1 × 1M) lives in the
//! `federation_json` bin — criterion's smoke mode (`cargo bench --
//! --test`) must stay fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mirabel_core::exec::Pool;
use mirabel_edms::federation::{Federation, FederationConfig};
use mirabel_edms::SimulationConfig;

const CYCLES: usize = 2;

fn split_cfg(total_brps: usize, regions: usize, per_brp: usize, width: usize) -> FederationConfig {
    FederationConfig {
        regions,
        sim: SimulationConfig {
            brps: total_brps / regions,
            prosumers_per_brp: per_brp,
            cycles: CYCLES,
            offers_per_prosumer: 1,
            use_tso: true,
            budget_evaluations: 2_000,
            seed: 42,
            pool: Pool::new(width),
            ..SimulationConfig::default()
        },
        ..FederationConfig::default()
    }
}

fn federation_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("federation_throughput_split");
    group.sample_size(3);
    for &regions in &[1usize, 2, 4] {
        let cfg = split_cfg(4, regions, 250, 4);
        group.throughput(Throughput::Elements(CYCLES as u64));
        group.bench_with_input(BenchmarkId::new("regions", regions), &cfg, |b, cfg| {
            b.iter(|| Federation::run(cfg.clone()).regions.len())
        });
    }
    group.finish();
}

fn exchange_splice_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("federation_exchange_splice");
    group.sample_size(3);
    // Width 1 serializes the region drives, so the only difference
    // between the rows is hierarchy size per region plus the splice.
    for &regions in &[1usize, 4] {
        let cfg = split_cfg(4, regions, 250, 1);
        group.throughput(Throughput::Elements(CYCLES as u64));
        group.bench_with_input(
            BenchmarkId::new("serial_regions", regions),
            &cfg,
            |b, cfg| b.iter(|| Federation::run(cfg.clone()).exchange.deltas_published),
        );
    }
    group.finish();
}

criterion_group!(benches, federation_split, exchange_splice_overhead);
criterion_main!(benches);
