//! Criterion bench behind Figure 4(a): objective-evaluation throughput of
//! the three global estimators on the HWT model (fixed evaluation budget,
//! so the measured time is the per-evaluation cost each algorithm pays).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirabel_core::{TimeSlot, SLOTS_PER_DAY};
use mirabel_forecast::{
    Budget, Estimator, ForecastModel, HwtModel, Objective, RandomRestartNelderMead, RandomSearch,
    SimulatedAnnealing,
};
use mirabel_timeseries::DemandGenerator;

fn estimators(c: &mut Criterion) {
    let series = DemandGenerator::default().generate(TimeSlot(0), 10 * SLOTS_PER_DAY as usize, 3);
    let warmup = 7 * SLOTS_PER_DAY as usize;
    let template = HwtModel::daily_weekly();
    let bounds = template.param_bounds();

    let mut group = c.benchmark_group("fig4a_estimation_200_evals");
    group.sample_size(10);
    let algos: Vec<(&str, Box<dyn Estimator>)> = vec![
        ("rrnm", Box::new(RandomRestartNelderMead::default())),
        ("sa", Box::new(SimulatedAnnealing::default())),
        ("random", Box::new(RandomSearch)),
    ];
    for (name, est) in &algos {
        group.bench_with_input(BenchmarkId::from_parameter(*name), est, |b, est| {
            b.iter(|| {
                let t = template.clone();
                let s = series.clone();
                let objective = Objective::new(bounds.clone(), move |p: &[f64]| {
                    let mut m = t.clone();
                    m.set_params(p);
                    m.evaluate(&s, warmup)
                });
                est.estimate(&objective, Budget::evaluations(200), 7)
                    .best_error
            })
        });
    }
    group.finish();
}

criterion_group!(benches, estimators);
criterion_main!(benches);
