//! End-to-end simulation throughput on the shared worker pool.
//!
//! MIRABEL's node runs forecasting, aggregation and scheduling
//! *continuously*, so the number that matters is sustained planning
//! rounds per second for a whole hierarchy — not any single kernel.
//! Three groups anchor the perf trajectory:
//!
//! 1. `rounds` — full 3-level simulations (prosumers → BRPs → TSO) at
//!    1 k and 10 k prosumers **per pool width 1/2/4/8**, reported as
//!    cycles/sec. Since the concurrent node drivers landed, width is
//!    the scaling axis: every level's nodes plan in parallel (and every
//!    inner path — flush shards, best-of-K starts, repair chains —
//!    shares the same lanes through the submission queue), so on an
//!    N-core box the width-N row should approach N× the width-1 row
//!    while producing bit-identical plans. The standalone
//!    `throughput_json` bin emits the same grid as `BENCH_throughput.json`
//!    for CI's perf-trajectory artifact.
//! 2. `chaos_overhead` — the sequenced self-healing wire's price: the
//!    same 1 k-prosumer workload on a reliable network (tracks the
//!    `rounds` trajectory — the wire must stay within 5% of the
//!    pre-sequencing numbers) and under a 30% loss storm with churn.
//! 3. `trickle_flush` — the chatty-caller case the pool exists for: a
//!    small membership churn touching 8 live 1 k-member groups per
//!    flush, folded on (a) one persistent shared pool vs (b) a pool
//!    created and dropped per flush — the spawn/join cost profile of
//!    the old `std::thread::scope` code.
//! 4. `dispatch` — the bare executor micro-benchmark: `Pool::run` over
//!    N small tasks vs `std::thread::scope` spawning N threads for the
//!    same tasks.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mirabel_aggregate::{AggregationParams, AggregationPipeline, FlexOfferUpdate};
use mirabel_core::exec::Pool;
use mirabel_core::{EnergyRange, FlexOffer, FlexOfferId, Profile, TimeSlot};
use mirabel_edms::{simulate, SimulationConfig};

const CYCLES: usize = 2;

fn hierarchy_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_throughput_rounds");
    group.sample_size(3);
    for &prosumers in &[1_000usize, 10_000] {
        for &width in &[1usize, 2, 4, 8] {
            let brps = 4;
            let cfg = SimulationConfig {
                brps,
                prosumers_per_brp: prosumers / brps,
                cycles: CYCLES,
                offers_per_prosumer: 1,
                use_tso: true,
                budget_evaluations: 2_000,
                seed: 42,
                pool: Pool::new(width),
                ..SimulationConfig::default()
            };
            // cycles/sec: each element is one full plan→refine→commit
            // round. Output is identical across the width rows (the
            // determinism suite pins that); only the rate may move.
            group.throughput(Throughput::Elements(CYCLES as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("prosumers/{prosumers}/width"), width),
                &cfg,
                |b, cfg| b.iter(|| simulate(cfg.clone()).assigned),
            );
        }
    }
    group.finish();
}

/// The sequenced wire's price on the reliable path, and under fire.
///
/// `reliable` is the same workload as the `rounds` group at 1 k
/// prosumers: every envelope now carries a per-link stream sequence
/// number and passes through the receivers' dedup/ordering guards, so
/// this row tracking the `rounds/prosumers/1000` trajectory (within 5%)
/// *is* the claim that the self-healing wire is free when nothing
/// fails. `loss_storm` runs the identical hierarchy through a one-cycle
/// 30% drop storm with churn — the cost of detection, resync
/// round-trips and dead-letter replay, for comparison.
fn chaos_overhead(c: &mut Criterion) {
    use mirabel_edms::chaos::loss_storm;
    use mirabel_edms::ChaosPlan;

    let brps = 4;
    let cfg = SimulationConfig {
        brps,
        prosumers_per_brp: 1_000 / brps,
        cycles: CYCLES,
        offers_per_prosumer: 1,
        use_tso: true,
        budget_evaluations: 2_000,
        seed: 42,
        ..SimulationConfig::default()
    };

    let mut group = c.benchmark_group("simulation_throughput_chaos_overhead");
    group.sample_size(3);
    group.throughput(Throughput::Elements(CYCLES as u64));
    group.bench_function("reliable", |b| b.iter(|| simulate(cfg.clone()).assigned));
    group.bench_function("loss_storm", |b| {
        let stormy = SimulationConfig {
            chaos: ChaosPlan::reliable().phase(loss_storm(1, 2, 0.3)),
            churn_fraction: 0.05,
            ..cfg.clone()
        };
        b.iter(|| simulate(stormy.clone()).assigned)
    });
    group.finish();
}

/// One member of churn group `g` (distinct start per group keeps the
/// groups apart under exact-match thresholds). The release-only smoke
/// test in `crates/aggregate/tests/scale_smoke.rs` asserts a latency
/// bound on this same churn scenario; keep the workload shapes in sync.
fn churn_member(id: u64, g: u64) -> FlexOffer {
    FlexOffer::builder(id, 1)
        .earliest_start(TimeSlot(10 + (g * 100) as i64))
        .time_flexibility(8)
        .profile(Profile::uniform(4, EnergyRange::new(0.5, 2.0).unwrap()))
        .build()
        .unwrap()
}

fn trickle_flush(c: &mut Criterion) {
    const GROUPS: u64 = 8;
    const MEMBERS: u64 = 1_000;
    const WIDTH: usize = 4;

    let seeded_pipeline = || {
        let mut p = AggregationPipeline::new(AggregationParams::p0(), None);
        p.apply(
            (0..GROUPS)
                .flat_map(|g| {
                    (0..MEMBERS)
                        .map(move |k| FlexOfferUpdate::Insert(churn_member(g * 1_000_000 + k, g)))
                })
                .collect(),
        );
        assert_eq!(p.aggregate_count(), GROUPS as usize);
        p
    };
    // One trickle batch: a fresh member into each group, the previous
    // round's extra member out — every flush touches all 8 groups.
    let churn = |p: &mut AggregationPipeline, i: u64| {
        let mut batch = Vec::with_capacity(2 * GROUPS as usize);
        for g in 0..GROUPS {
            let base = g * 1_000_000 + 500_000;
            if i > 0 {
                batch.push(FlexOfferUpdate::Delete(FlexOfferId(base + i - 1)));
            }
            batch.push(FlexOfferUpdate::Insert(churn_member(base + i, g)));
        }
        p.apply(batch).len()
    };

    let mut group = c.benchmark_group("simulation_throughput_trickle_flush");
    group.sample_size(10);

    // (a) the rewired steady state: one persistent pool, woken per flush.
    group.bench_function("shared_pool", |b| {
        let mut p = seeded_pipeline();
        p.set_flush_pool(Pool::new(WIDTH));
        let mut i = 0u64;
        b.iter(|| {
            let out = churn(&mut p, i);
            i += 1;
            black_box(out)
        })
    });

    // (b) the old cost profile: workers spawned and joined per flush
    // (a fresh pool per apply == the scoped-spawn pattern's overhead).
    group.bench_function("spawn_per_flush", |b| {
        let mut p = seeded_pipeline();
        let mut i = 0u64;
        b.iter(|| {
            p.set_flush_pool(Pool::new(WIDTH));
            let out = churn(&mut p, i);
            i += 1;
            black_box(out)
        })
    });
    group.finish();
}

fn executor_dispatch(c: &mut Criterion) {
    const TASKS: usize = 4;
    // Roughly one small sub-group fold's worth of arithmetic per task.
    let work = |i: usize| -> f64 {
        let mut acc = i as f64;
        for k in 0..2_000u32 {
            acc += f64::from(k).sqrt();
        }
        acc
    };

    let mut group = c.benchmark_group("simulation_throughput_dispatch");
    group.sample_size(20);
    let pool = Pool::new(TASKS);
    group.bench_function("persistent_pool", |b| {
        b.iter(|| pool.run(TASKS, work).iter().sum::<f64>())
    });
    // The submission API: independent handles joined in caller order —
    // the per-task cost of queue + handle vs a claimed batch.
    group.bench_function("submit_join", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..TASKS).map(|i| pool.submit(move || work(i))).collect();
            handles.into_iter().map(|h| h.join()).sum::<f64>()
        })
    });
    group.bench_function("scoped_spawn", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..TASKS).map(|i| s.spawn(move || work(i))).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .sum::<f64>()
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    hierarchy_rounds,
    chaos_overhead,
    trickle_flush,
    executor_dispatch
);
criterion_main!(benches);
