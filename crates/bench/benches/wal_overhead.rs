//! The durable wire's price: WAL append overhead and recovery latency.
//!
//! Two groups anchor the event-sourcing cost model:
//!
//! 1. `rounds` — the 1 k-prosumer hierarchy from `simulation_throughput`
//!    with per-BRP write-ahead logs off vs on. The `wal_on` row is the
//!    append-before-apply tax on the hot path — one codec encode plus an
//!    in-memory frame push per accepted envelope, plus periodic
//!    snapshot-then-truncate compaction. The acceptance bar is the
//!    `wal_on` row staying within 10% of `wal_off` (the standalone
//!    `wal_json` bin measures and records the same ratio per commit).
//! 2. `recovery` — crash-restart latency: rebuild a BRP from a log
//!    holding 1 k / 10 k submitted offers (snapshot + replay tail at the
//!    default compaction cadence). Each iteration clones the "disk"
//!    through the public [`WalStore`] API before recovering, so the
//!    timed number is clone + decode + handler replay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mirabel_core::{EnergyRange, NodeId, Profile, TimeSlot};
use mirabel_edms::{
    simulate, BrpConfig, BrpNode, Envelope, MemWalStore, Message, NodeWal, SimulationConfig,
    WalConfig, WalStore,
};

const CYCLES: usize = 2;
const BRP_ID: NodeId = NodeId(1);

fn hierarchy(wal: Option<WalConfig>) -> SimulationConfig {
    let brps = 4;
    SimulationConfig {
        brps,
        prosumers_per_brp: 1_000 / brps,
        cycles: CYCLES,
        offers_per_prosumer: 1,
        use_tso: true,
        budget_evaluations: 2_000,
        seed: 42,
        wal,
        ..SimulationConfig::default()
    }
}

/// A BRP's "disk" after ingesting `offers` submissions at the default
/// snapshot cadence: a snapshot plus a replay tail.
fn populated_store(offers: usize) -> (Box<dyn WalStore>, usize, u64) {
    let mut brp = BrpNode::new(BRP_ID, None, BrpConfig::default());
    brp.attach_wal(NodeWal::in_memory(WalConfig::default()));
    let now = TimeSlot(0);
    for i in 0..offers as u64 {
        let offer = mirabel_core::FlexOffer::builder(i, 500 + i)
            .earliest_start(TimeSlot(10 + (i % 50) as i64))
            .time_flexibility(8)
            .assignment_before(TimeSlot(5))
            .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap();
        brp.handle(
            Envelope::new(NodeId(500 + i), BRP_ID, now, Message::SubmitOffer(offer)),
            now,
        );
    }
    let (pool_size, digest) = (brp.pool_size(), brp.pool_digest());
    (
        brp.take_wal().expect("WAL attached").into_store(),
        pool_size,
        digest,
    )
}

/// Duplicate a store through the public trait (load → re-install /
/// re-append): recovery consumes its store, so each timed iteration
/// gets a fresh copy of the same bytes.
fn clone_store(master: &mut Box<dyn WalStore>) -> Box<dyn WalStore> {
    let (snapshot, frames) = master.load().expect("in-memory load cannot fail");
    let mut copy = MemWalStore::new();
    if let Some(snap) = snapshot {
        copy.install_snapshot(&snap).expect("in-memory install");
    }
    for frame in frames {
        copy.append(&frame).expect("in-memory append");
    }
    Box::new(copy)
}

fn wal_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_overhead_rounds");
    group.sample_size(3);
    for (label, wal) in [("wal_off", None), ("wal_on", Some(WalConfig::default()))] {
        let cfg = hierarchy(wal);
        group.throughput(Throughput::Elements(CYCLES as u64));
        group.bench_with_input(BenchmarkId::new("1k_prosumers", label), &cfg, |b, cfg| {
            b.iter(|| simulate(cfg.clone()).assigned)
        });
    }
    group.finish();
}

fn wal_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery");
    group.sample_size(10);
    for &offers in &[1_000usize, 10_000] {
        let (mut master, pool_size, digest) = populated_store(offers);
        group.throughput(Throughput::Elements(offers as u64));
        group.bench_with_input(BenchmarkId::new("offers", offers), &offers, |b, _| {
            b.iter(|| {
                let store = clone_store(&mut master);
                let (node, out) = BrpNode::recover(
                    BRP_ID,
                    None,
                    BrpConfig::default(),
                    store,
                    WalConfig::default(),
                    TimeSlot(0),
                )
                .expect("in-memory recovery cannot fail");
                assert!(out.is_empty(), "local-mode recovery emits nothing");
                assert_eq!(node.pool_size(), pool_size);
                assert_eq!(node.pool_digest(), digest);
                node.pool_digest()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, wal_rounds, wal_recovery);
criterion_main!(benches);
