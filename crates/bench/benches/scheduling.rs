//! Criterion bench behind Figure 6: cost of one scheduling run at fixed
//! evaluation budget across instance sizes and algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirabel_schedule::{
    scenario, Budget, EvolutionaryScheduler, GreedyScheduler, ScenarioConfig,
};

fn schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_scheduling_2000_evals");
    group.sample_size(10);
    for n in [10usize, 100, 1000] {
        let problem = scenario(ScenarioConfig {
            offer_count: n,
            seed: 1,
            ..ScenarioConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &problem, |b, p| {
            b.iter(|| GreedyScheduler.run(p, Budget::evaluations(2_000), 3).cost)
        });
        group.bench_with_input(BenchmarkId::new("ea", n), &problem, |b, p| {
            b.iter(|| {
                EvolutionaryScheduler::default()
                    .run(p, Budget::evaluations(2_000), 3)
                    .cost
            })
        });
    }
    group.finish();
}

criterion_group!(benches, schedulers);
criterion_main!(benches);
