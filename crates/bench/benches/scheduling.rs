//! Criterion bench behind Figure 6: cost of one scheduling run at fixed
//! evaluation budget across instance sizes and algorithms — plus the
//! `full_vs_delta` group comparing one-move scoring via a full
//! `cost::evaluate()` against the `DeltaEvaluator`. Full re-evaluation is
//! O(offers × duration + horizon) per move while the delta path is
//! O(offer duration), so the gap must widen linearly with offer count
//! (≥10× at 1 000 offers is the acceptance bar for this bench).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mirabel_bench::paper_ea;
use mirabel_schedule::cost::evaluate;
use mirabel_schedule::solution::Placement;
use mirabel_schedule::{
    scenario, Budget, DeltaEvaluator, GreedyScheduler, ScenarioConfig, Solution,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_scheduling_2000_evals");
    group.sample_size(10);
    for n in [10usize, 100, 1000] {
        let problem = scenario(ScenarioConfig {
            offer_count: n,
            seed: 1,
            ..ScenarioConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &problem, |b, p| {
            // Paper's pure restart greedy (polish disabled).
            b.iter(|| {
                GreedyScheduler
                    .run_with_polish(p, Budget::evaluations(2_000), 3, 0)
                    .cost
            })
        });
        group.bench_with_input(BenchmarkId::new("ea", n), &problem, |b, p| {
            // Paper's EA (memetic refinement disabled).
            b.iter(|| paper_ea().run(p, Budget::evaluations(2_000), 3).cost)
        });
    }
    group.finish();
}

fn full_vs_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_vs_delta_move_scoring");
    group.sample_size(20);
    for n in [100usize, 1_000, 10_000] {
        let problem = scenario(ScenarioConfig {
            offer_count: n,
            seed: 1,
            ..ScenarioConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(2);
        let solution = Solution::random(&problem, &mut rng);

        // Full path: score one single-offer move by re-evaluating the
        // whole schedule (what every scheduler did before the delta
        // evaluator existed), including the per-move solution clone.
        group.bench_with_input(BenchmarkId::new("full", n), &problem, |b, p| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let j = rng.gen_range(0..p.offers.len());
                let mut cand = solution.clone();
                cand.placements[j] = Placement::random(&p.offers[j], &mut rng);
                black_box(evaluate(p, &cand).total())
            })
        });

        // Delta path: propose + revert on live evaluator state.
        group.bench_with_input(BenchmarkId::new("delta", n), &problem, |b, p| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut eval = DeltaEvaluator::new(p, solution.clone());
            b.iter(|| {
                let j = rng.gen_range(0..p.offers.len());
                let total = eval.propose(j, |g, offer| {
                    *g = Placement::random(offer, &mut rng);
                });
                eval.revert();
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, schedulers, full_vs_delta);
criterion_main!(benches);
