//! Property tests for the core domain model.

use mirabel_core::{
    EnergyRange, FlexOffer, Profile, ScheduledFlexOffer, Slice, TimeSlot, SLOTS_PER_DAY,
};
use proptest::prelude::*;

proptest! {
    // ----- time arithmetic ------------------------------------------------

    #[test]
    fn slot_of_day_is_congruent(idx in -1_000_000i64..1_000_000) {
        let t = TimeSlot(idx);
        let sod = t.slot_of_day() as i64;
        prop_assert!((0..SLOTS_PER_DAY as i64).contains(&sod));
        prop_assert_eq!((idx - sod).rem_euclid(SLOTS_PER_DAY as i64), 0);
    }

    #[test]
    fn day_decomposition_roundtrips(idx in -1_000_000i64..1_000_000) {
        let t = TimeSlot(idx);
        prop_assert_eq!(
            t.day() * SLOTS_PER_DAY as i64 + t.slot_of_day() as i64,
            idx
        );
    }

    #[test]
    fn add_sub_inverse(idx in -1_000_000i64..1_000_000, span in 0u32..100_000) {
        let t = TimeSlot(idx);
        prop_assert_eq!((t + span) - span, t);
        prop_assert_eq!((t + span) - t, span as i64);
        prop_assert_eq!(t.span_to(t + span), Some(span));
    }

    // ----- profiles -------------------------------------------------------

    #[test]
    fn normalize_preserves_semantics(
        durs in proptest::collection::vec(1u32..5, 1..8),
        los in proptest::collection::vec(0.0f64..5.0, 8),
        widths in proptest::collection::vec(0.0f64..3.0, 8),
    ) {
        let slices: Vec<Slice> = durs
            .iter()
            .enumerate()
            .map(|(i, &d)| Slice {
                duration: d,
                energy: EnergyRange::new(los[i], los[i] + widths[i]).unwrap(),
            })
            .collect();
        let p = Profile::new(slices).unwrap();
        let n = p.normalize();
        prop_assert_eq!(n.total_duration(), p.total_duration());
        prop_assert!(n.slice_count() <= p.slice_count());
        let a: Vec<EnergyRange> = p.slot_ranges().collect();
        let b: Vec<EnergyRange> = n.slot_ranges().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn profile_totals_consistent(
        durs in proptest::collection::vec(1u32..5, 1..8),
        los in proptest::collection::vec(0.0f64..5.0, 8),
        widths in proptest::collection::vec(0.0f64..3.0, 8),
    ) {
        let slices: Vec<Slice> = durs
            .iter()
            .enumerate()
            .map(|(i, &d)| Slice {
                duration: d,
                energy: EnergyRange::new(los[i], los[i] + widths[i]).unwrap(),
            })
            .collect();
        let p = Profile::new(slices).unwrap();
        prop_assert!(p.min_total_energy() <= p.max_total_energy());
        let flex = p.energy_flexibility();
        let width_sum = (p.max_total_energy() - p.min_total_energy()).kwh();
        prop_assert!((flex.kwh() - width_sum).abs() < 1e-9);
    }

    // ----- schedules ------------------------------------------------------

    #[test]
    fn at_fraction_always_validates(
        es in 0i64..500,
        tf in 0u32..50,
        dur in 1u32..10,
        lo in 0.0f64..5.0,
        width in 0.0f64..3.0,
        shift_frac in 0.0f64..1.0,
        fill in 0.0f64..1.0,
    ) {
        let offer = FlexOffer::builder(1, 1)
            .earliest_start(TimeSlot(es))
            .time_flexibility(tf)
            .profile(Profile::uniform(dur, EnergyRange::new(lo, lo + width).unwrap()))
            .build()
            .unwrap();
        let shift = (tf as f64 * shift_frac) as u32;
        let s = ScheduledFlexOffer::at_fraction(&offer, offer.earliest_start() + shift, fill);
        prop_assert!(s.validate_against(&offer, 1e-9).is_ok());
        // total energy interpolates between profile min and max
        prop_assert!(s.total_energy() >= offer.profile().min_total_energy() - 1e-9.into());
        prop_assert!(s.total_energy() <= offer.profile().max_total_energy() + 1e-9.into());
    }

    #[test]
    fn open_contract_always_validates(
        es in 0i64..500,
        tf in 0u32..50,
        dur in 1u32..10,
        lo in 0.0f64..5.0,
        width in 0.0f64..3.0,
    ) {
        let offer = FlexOffer::builder(1, 1)
            .earliest_start(TimeSlot(es))
            .time_flexibility(tf)
            .profile(Profile::uniform(dur, EnergyRange::new(lo, lo + width).unwrap()))
            .build()
            .unwrap();
        let s = ScheduledFlexOffer::open_contract(&offer);
        prop_assert!(s.validate_against(&offer, 1e-9).is_ok());
        prop_assert_eq!(s.start, offer.earliest_start());
        prop_assert!(s.total_energy().approx_eq(offer.profile().max_total_energy(), 1e-9));
    }

    #[test]
    fn energy_at_sums_to_total(
        es in 0i64..100,
        dur in 1u32..10,
        lo in 0.0f64..5.0,
        fill in 0.0f64..1.0,
    ) {
        let offer = FlexOffer::builder(1, 1)
            .earliest_start(TimeSlot(es))
            .profile(Profile::uniform(dur, EnergyRange::new(lo, lo + 2.0).unwrap()))
            .build()
            .unwrap();
        let s = ScheduledFlexOffer::at_fraction(&offer, offer.earliest_start(), fill);
        let summed: f64 = (0..dur).map(|k| s.energy_at(s.start + k).kwh()).sum();
        prop_assert!((summed - s.total_energy().kwh()).abs() < 1e-9);
        prop_assert_eq!(s.energy_at(s.start - 1u32).kwh(), 0.0);
        prop_assert_eq!(s.energy_at(s.end()).kwh(), 0.0);
    }

    // ----- energy ranges ----------------------------------------------------

    #[test]
    fn minkowski_sum_contains_member_sums(
        lo1 in -5.0f64..5.0, w1 in 0.0f64..3.0,
        lo2 in -5.0f64..5.0, w2 in 0.0f64..3.0,
        f1 in 0.0f64..1.0, f2 in 0.0f64..1.0,
    ) {
        let a = EnergyRange::new(lo1, lo1 + w1).unwrap();
        let b = EnergyRange::new(lo2, lo2 + w2).unwrap();
        let s = a.sum(&b);
        let picked = a.lerp(f1) + b.lerp(f2);
        prop_assert!(s.contains(picked, 1e-9));
    }

    #[test]
    fn lerp_fraction_roundtrip(lo in -5.0f64..5.0, w in 0.01f64..3.0, f in 0.0f64..1.0) {
        let r = EnergyRange::new(lo, lo + w).unwrap();
        let e = r.lerp(f);
        prop_assert!((r.fraction_of(e) - f).abs() < 1e-9);
    }
}
