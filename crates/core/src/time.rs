//! Discrete time model.
//!
//! MIRABEL operates on the 15-minute metering grid used by European balance
//! settlement. A [`TimeSlot`] is an index into that grid (slot 0 is an
//! arbitrary epoch; negative indices are valid history). All durations are
//! expressed as a whole number of slots ([`SlotSpan`]).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Length of one metering slot in minutes.
pub const SLOT_MINUTES: u32 = 15;
/// Number of slots per hour (4 at 15-minute granularity).
pub const SLOTS_PER_HOUR: u32 = 60 / SLOT_MINUTES;
/// Number of slots per day (96 at 15-minute granularity).
pub const SLOTS_PER_DAY: u32 = 24 * SLOTS_PER_HOUR;
/// Number of slots per week (672 at 15-minute granularity).
pub const SLOTS_PER_WEEK: u32 = 7 * SLOTS_PER_DAY;

/// A duration measured in metering slots.
pub type SlotSpan = u32;

/// One 15-minute metering interval, identified by its index since the epoch.
///
/// `TimeSlot(t)` covers the half-open wall-clock interval
/// `[t * 15 min, (t + 1) * 15 min)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TimeSlot(pub i64);

impl TimeSlot {
    /// The epoch slot (index 0).
    pub const EPOCH: TimeSlot = TimeSlot(0);

    /// Raw slot index.
    #[inline]
    pub fn index(self) -> i64 {
        self.0
    }

    /// Slot-of-day in `0..SLOTS_PER_DAY` (Euclidean, so correct for
    /// negative indices too).
    #[inline]
    pub fn slot_of_day(self) -> u32 {
        self.0.rem_euclid(SLOTS_PER_DAY as i64) as u32
    }

    /// Slot-of-week in `0..SLOTS_PER_WEEK`; the epoch is defined to fall on
    /// a Monday at 00:00.
    #[inline]
    pub fn slot_of_week(self) -> u32 {
        self.0.rem_euclid(SLOTS_PER_WEEK as i64) as u32
    }

    /// Day index since the epoch (floor division, negative for history).
    #[inline]
    pub fn day(self) -> i64 {
        self.0.div_euclid(SLOTS_PER_DAY as i64)
    }

    /// Day of week in `0..7` where 0 is Monday (epoch convention).
    #[inline]
    pub fn day_of_week(self) -> u32 {
        (self.day().rem_euclid(7)) as u32
    }

    /// Hour of day in `0..24`.
    #[inline]
    pub fn hour_of_day(self) -> u32 {
        self.slot_of_day() / SLOTS_PER_HOUR
    }

    /// First slot of the day this slot belongs to.
    #[inline]
    pub fn start_of_day(self) -> TimeSlot {
        TimeSlot(self.day() * SLOTS_PER_DAY as i64)
    }

    /// Saturating forward jump by `span` slots.
    #[inline]
    pub fn advance(self, span: SlotSpan) -> TimeSlot {
        TimeSlot(self.0 + span as i64)
    }

    /// Distance in slots to `later`; `None` when `later` precedes `self`.
    #[inline]
    pub fn span_to(self, later: TimeSlot) -> Option<SlotSpan> {
        let d = later.0 - self.0;
        u32::try_from(d).ok()
    }

    /// Minutes since the epoch for the slot start.
    #[inline]
    pub fn minutes(self) -> i64 {
        self.0 * SLOT_MINUTES as i64
    }
}

impl Add<SlotSpan> for TimeSlot {
    type Output = TimeSlot;
    #[inline]
    fn add(self, rhs: SlotSpan) -> TimeSlot {
        TimeSlot(self.0 + rhs as i64)
    }
}

impl AddAssign<SlotSpan> for TimeSlot {
    #[inline]
    fn add_assign(&mut self, rhs: SlotSpan) {
        self.0 += rhs as i64;
    }
}

impl Sub<SlotSpan> for TimeSlot {
    type Output = TimeSlot;
    #[inline]
    fn sub(self, rhs: SlotSpan) -> TimeSlot {
        TimeSlot(self.0 - rhs as i64)
    }
}

impl SubAssign<SlotSpan> for TimeSlot {
    #[inline]
    fn sub_assign(&mut self, rhs: SlotSpan) {
        self.0 -= rhs as i64;
    }
}

impl Sub<TimeSlot> for TimeSlot {
    type Output = i64;
    /// Signed slot distance `self - rhs`.
    #[inline]
    fn sub(self, rhs: TimeSlot) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for TimeSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sod = self.slot_of_day();
        let h = sod / SLOTS_PER_HOUR;
        let m = (sod % SLOTS_PER_HOUR) * SLOT_MINUTES;
        write!(f, "d{}+{:02}:{:02}", self.day(), h, m)
    }
}

/// Inclusive-start, exclusive-end slot window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlotWindow {
    /// First slot inside the window.
    pub start: TimeSlot,
    /// First slot after the window.
    pub end: TimeSlot,
}

impl SlotWindow {
    /// Create a window; `end` is clamped to be at least `start`.
    pub fn new(start: TimeSlot, end: TimeSlot) -> SlotWindow {
        SlotWindow {
            start,
            end: end.max(start),
        }
    }

    /// Window covering `len` slots from `start`.
    pub fn of_len(start: TimeSlot, len: SlotSpan) -> SlotWindow {
        SlotWindow {
            start,
            end: start + len,
        }
    }

    /// Number of slots in the window.
    pub fn len(&self) -> SlotSpan {
        (self.end.0 - self.start.0) as SlotSpan
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `slot` is inside the window.
    pub fn contains(&self, slot: TimeSlot) -> bool {
        slot >= self.start && slot < self.end
    }

    /// Intersection with another window (possibly empty).
    pub fn intersect(&self, other: &SlotWindow) -> SlotWindow {
        SlotWindow::new(self.start.max(other.start), self.end.min(other.end))
    }

    /// Iterate over all slots in the window.
    pub fn iter(&self) -> impl Iterator<Item = TimeSlot> {
        (self.start.0..self.end.0).map(TimeSlot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_of_day_wraps() {
        assert_eq!(TimeSlot(0).slot_of_day(), 0);
        assert_eq!(TimeSlot(95).slot_of_day(), 95);
        assert_eq!(TimeSlot(96).slot_of_day(), 0);
        assert_eq!(TimeSlot(97).slot_of_day(), 1);
    }

    #[test]
    fn slot_of_day_negative_history() {
        assert_eq!(TimeSlot(-1).slot_of_day(), 95);
        assert_eq!(TimeSlot(-96).slot_of_day(), 0);
        assert_eq!(TimeSlot(-97).slot_of_day(), 95);
    }

    #[test]
    fn day_and_weekday() {
        assert_eq!(TimeSlot(0).day(), 0);
        assert_eq!(TimeSlot(95).day(), 0);
        assert_eq!(TimeSlot(96).day(), 1);
        assert_eq!(TimeSlot(-1).day(), -1);
        assert_eq!(TimeSlot(0).day_of_week(), 0); // epoch Monday
        assert_eq!(TimeSlot(6 * 96).day_of_week(), 6);
        assert_eq!(TimeSlot(7 * 96).day_of_week(), 0);
        assert_eq!(TimeSlot(-96).day_of_week(), 6); // Sunday before epoch
    }

    #[test]
    fn hour_of_day() {
        assert_eq!(TimeSlot(0).hour_of_day(), 0);
        assert_eq!(TimeSlot(4).hour_of_day(), 1);
        assert_eq!(TimeSlot(95).hour_of_day(), 23);
    }

    #[test]
    fn arithmetic() {
        let t = TimeSlot(10);
        assert_eq!(t + 5, TimeSlot(15));
        assert_eq!(t - 5, TimeSlot(5));
        assert_eq!(TimeSlot(15) - TimeSlot(10), 5);
        assert_eq!(TimeSlot(10) - TimeSlot(15), -5);
        let mut u = t;
        u += 2;
        u -= 1;
        assert_eq!(u, TimeSlot(11));
    }

    #[test]
    fn span_to() {
        assert_eq!(TimeSlot(3).span_to(TimeSlot(7)), Some(4));
        assert_eq!(TimeSlot(3).span_to(TimeSlot(3)), Some(0));
        assert_eq!(TimeSlot(7).span_to(TimeSlot(3)), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(TimeSlot(0).to_string(), "d0+00:00");
        assert_eq!(TimeSlot(88).to_string(), "d0+22:00");
        assert_eq!(TimeSlot(97).to_string(), "d1+00:15");
    }

    #[test]
    fn window_basics() {
        let w = SlotWindow::of_len(TimeSlot(10), 5);
        assert_eq!(w.len(), 5);
        assert!(w.contains(TimeSlot(10)));
        assert!(w.contains(TimeSlot(14)));
        assert!(!w.contains(TimeSlot(15)));
        assert!(!w.is_empty());
        assert_eq!(w.iter().count(), 5);
    }

    #[test]
    fn window_intersection() {
        let a = SlotWindow::of_len(TimeSlot(0), 10);
        let b = SlotWindow::of_len(TimeSlot(5), 10);
        let i = a.intersect(&b);
        assert_eq!(i.start, TimeSlot(5));
        assert_eq!(i.end, TimeSlot(10));
        let disjoint = SlotWindow::of_len(TimeSlot(20), 5);
        assert!(a.intersect(&disjoint).is_empty());
    }

    #[test]
    fn window_end_clamped() {
        let w = SlotWindow::new(TimeSlot(5), TimeSlot(2));
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn start_of_day() {
        assert_eq!(TimeSlot(100).start_of_day(), TimeSlot(96));
        assert_eq!(TimeSlot(-1).start_of_day(), TimeSlot(-96));
    }
}
