//! Scheduled flex-offers: start time and per-slot energies fixed.

use crate::energy::Energy;
use crate::error::DomainError;
use crate::flexoffer::FlexOffer;
use crate::id::FlexOfferId;
use crate::time::{SlotSpan, TimeSlot};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The result of scheduling one flex-offer: all flexibility resolved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFlexOffer {
    /// The offer this schedule instantiates.
    pub offer_id: FlexOfferId,
    /// Chosen start slot.
    pub start: TimeSlot,
    /// Fixed energy per slot, one entry per slot of the offer's profile.
    pub slot_energies: Vec<Energy>,
}

impl ScheduledFlexOffer {
    /// Schedule `offer` at `start` with every slot at its minimum energy.
    pub fn at_min(offer: &FlexOffer, start: TimeSlot) -> ScheduledFlexOffer {
        ScheduledFlexOffer {
            offer_id: offer.id(),
            start,
            slot_energies: offer.profile().min_schedule(),
        }
    }

    /// Schedule `offer` at `start` with every slot at the same fraction of
    /// its energy range.
    pub fn at_fraction(offer: &FlexOffer, start: TimeSlot, frac: f64) -> ScheduledFlexOffer {
        ScheduledFlexOffer {
            offer_id: offer.id(),
            start,
            slot_energies: offer
                .profile()
                .slot_ranges()
                .map(|r| r.lerp(frac))
                .collect(),
        }
    }

    /// The *open contract* fallback (paper §1): when an offer times out
    /// without an assignment the device simply runs at its earliest start,
    /// maximum energy — the behaviour of the traditional, flexibility-free
    /// grid.
    pub fn open_contract(offer: &FlexOffer) -> ScheduledFlexOffer {
        ScheduledFlexOffer {
            offer_id: offer.id(),
            start: offer.earliest_start(),
            slot_energies: offer.profile().max_schedule(),
        }
    }

    /// Duration in slots.
    pub fn duration(&self) -> SlotSpan {
        self.slot_energies.len() as SlotSpan
    }

    /// First slot after the schedule.
    pub fn end(&self) -> TimeSlot {
        self.start + self.duration()
    }

    /// Total scheduled energy.
    pub fn total_energy(&self) -> Energy {
        self.slot_energies.iter().copied().sum()
    }

    /// Energy in absolute slot `t`, zero outside the scheduled window.
    pub fn energy_at(&self, t: TimeSlot) -> Energy {
        let d = t - self.start;
        if d < 0 || d >= self.slot_energies.len() as i64 {
            Energy::ZERO
        } else {
            self.slot_energies[d as usize]
        }
    }

    /// Validate this schedule against the constraints of `offer`
    /// (identity, start window, per-slot ranges, total energy).
    pub fn validate_against(&self, offer: &FlexOffer, eps: f64) -> Result<(), DomainError> {
        if self.offer_id != offer.id() {
            return Err(DomainError::InvalidSchedule(format!(
                "schedule for {} applied to offer {}",
                self.offer_id,
                offer.id()
            )));
        }
        if self.start < offer.earliest_start() || self.start > offer.latest_start() {
            return Err(DomainError::InvalidSchedule(format!(
                "start {} outside [{}, {}]",
                self.start,
                offer.earliest_start(),
                offer.latest_start()
            )));
        }
        if self.slot_energies.len() as SlotSpan != offer.duration() {
            return Err(DomainError::InvalidSchedule(format!(
                "schedule has {} slots, profile has {}",
                self.slot_energies.len(),
                offer.duration()
            )));
        }
        for (i, (e, r)) in self
            .slot_energies
            .iter()
            .zip(offer.profile().slot_ranges())
            .enumerate()
        {
            if !r.contains(*e, eps) {
                return Err(DomainError::InvalidSchedule(format!(
                    "slot {i} energy {e} outside {r}"
                )));
            }
        }
        if let Some(te) = offer.total_energy() {
            if !te.contains(self.total_energy(), eps * self.slot_energies.len() as f64) {
                return Err(DomainError::InvalidSchedule(format!(
                    "total energy {} outside {te}",
                    self.total_energy()
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for ScheduledFlexOffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} ({} slots, {})",
            self.offer_id,
            self.start,
            self.duration(),
            self.total_energy()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyRange;
    use crate::flexoffer::OfferKind;
    use crate::profile::Profile;

    fn offer() -> FlexOffer {
        FlexOffer::builder(1, 1)
            .kind(OfferKind::Consumption)
            .earliest_start(TimeSlot(10))
            .latest_start(TimeSlot(20))
            .profile(Profile::uniform(4, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap()
    }

    #[test]
    fn at_min_validates() {
        let o = offer();
        let s = ScheduledFlexOffer::at_min(&o, TimeSlot(12));
        s.validate_against(&o, 1e-9).unwrap();
        assert!(s.total_energy().approx_eq(Energy::from_kwh(4.0), 1e-12));
        assert_eq!(s.end(), TimeSlot(16));
    }

    #[test]
    fn at_fraction_validates() {
        let o = offer();
        let s = ScheduledFlexOffer::at_fraction(&o, TimeSlot(20), 0.5);
        s.validate_against(&o, 1e-9).unwrap();
        assert!(s.total_energy().approx_eq(Energy::from_kwh(6.0), 1e-12));
    }

    #[test]
    fn open_contract_runs_at_earliest_max() {
        let o = offer();
        let s = ScheduledFlexOffer::open_contract(&o);
        assert_eq!(s.start, o.earliest_start());
        assert!(s.total_energy().approx_eq(Energy::from_kwh(8.0), 1e-12));
        s.validate_against(&o, 1e-9).unwrap();
    }

    #[test]
    fn rejects_start_outside_window() {
        let o = offer();
        let early = ScheduledFlexOffer::at_min(&o, TimeSlot(9));
        assert!(early.validate_against(&o, 1e-9).is_err());
        let late = ScheduledFlexOffer::at_min(&o, TimeSlot(21));
        assert!(late.validate_against(&o, 1e-9).is_err());
    }

    #[test]
    fn rejects_energy_out_of_range() {
        let o = offer();
        let mut s = ScheduledFlexOffer::at_min(&o, TimeSlot(10));
        s.slot_energies[2] = Energy::from_kwh(5.0);
        assert!(s.validate_against(&o, 1e-9).is_err());
    }

    #[test]
    fn rejects_wrong_duration() {
        let o = offer();
        let mut s = ScheduledFlexOffer::at_min(&o, TimeSlot(10));
        s.slot_energies.pop();
        assert!(s.validate_against(&o, 1e-9).is_err());
    }

    #[test]
    fn rejects_wrong_offer_identity() {
        let o = offer();
        let mut s = ScheduledFlexOffer::at_min(&o, TimeSlot(10));
        s.offer_id = FlexOfferId(99);
        assert!(s.validate_against(&o, 1e-9).is_err());
    }

    #[test]
    fn total_energy_constraint_enforced() {
        let o = FlexOffer::builder(2, 1)
            .earliest_start(TimeSlot(0))
            .profile(Profile::uniform(2, EnergyRange::new(0.0, 4.0).unwrap()))
            .total_energy(EnergyRange::new(3.0, 5.0).unwrap())
            .build()
            .unwrap();
        let too_little = ScheduledFlexOffer::at_min(&o, TimeSlot(0));
        assert!(too_little.validate_against(&o, 1e-9).is_err());
        let ok = ScheduledFlexOffer::at_fraction(&o, TimeSlot(0), 0.5);
        ok.validate_against(&o, 1e-9).unwrap();
    }

    #[test]
    fn energy_at_windowing() {
        let o = offer();
        let s = ScheduledFlexOffer::at_min(&o, TimeSlot(10));
        assert_eq!(s.energy_at(TimeSlot(9)), Energy::ZERO);
        assert!(s
            .energy_at(TimeSlot(10))
            .approx_eq(Energy::from_kwh(1.0), 1e-12));
        assert!(s
            .energy_at(TimeSlot(13))
            .approx_eq(Energy::from_kwh(1.0), 1e-12));
        assert_eq!(s.energy_at(TimeSlot(14)), Energy::ZERO);
    }
}
