//! # mirabel-core
//!
//! Domain model for the MIRABEL Energy Data Management System (EDMS).
//!
//! This crate defines the vocabulary shared by every other MIRABEL crate:
//!
//! * [`TimeSlot`] — the discrete 15-minute metering grid all components agree on,
//! * [`Energy`] / [`EnergyRange`] — energy quantities and per-slot flexibility bounds,
//! * [`Profile`] / [`Slice`] — the shape of a flex-offer's consumption or production,
//! * [`FlexOffer`] — the energy planning object at the heart of MIRABEL (paper §2),
//! * [`ScheduledFlexOffer`] — a flex-offer with start time and energies fixed,
//! * flexibility metrics (paper §4/§7) and a reproducible synthetic
//!   [`generator`] used by the experiments in place of the paper's
//!   800 000-offer artificial data set,
//! * [`exec`] — the shared deterministic worker [`Pool`] every parallel
//!   path in the workspace (aggregate flushes, scheduling chains, EGRV
//!   fitting) dispatches onto instead of spawning scoped threads per
//!   call,
//! * [`codec`] — the compact binary [`Wire`] format (varint/zigzag
//!   integers, bit-exact floats) that the message layer and the
//!   per-node write-ahead logs serialize through; it replaces the
//!   vendored no-op serde stub as the workspace's real wire encoding.
//!
//! The types are deliberately free of any aggregation / forecasting /
//! scheduling logic — those live in the dedicated crates layered on top.
//!
//! ## Example
//!
//! ```
//! use mirabel_core::{FlexOffer, OfferKind, Profile, Slice, EnergyRange, TimeSlot};
//!
//! // The paper's §2 use scenario: charge an EV (50 kWh) between 10pm and 7am.
//! // 10pm = slot 88 of the day; a 2h profile (8 slots) must start by 5am.
//! let offer = FlexOffer::builder(1, 42)
//!     .kind(OfferKind::Consumption)
//!     .earliest_start(TimeSlot(88))
//!     .latest_start(TimeSlot(116)) // 5am next day
//!     .assignment_before(TimeSlot(88))
//!     .profile(Profile::uniform(8, EnergyRange::new(5.0, 7.0).unwrap()))
//!     .build()
//!     .unwrap();
//! assert_eq!(offer.time_flexibility(), 28);
//! assert!(offer.profile().min_total_energy().kwh() >= 40.0);
//! ```
// `deny`, not `forbid`: the lifetime-erased task hand-off inside
// `exec` is the one permitted (module-scoped, documented) exception.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod energy;
pub mod error;
pub mod exec;
pub mod flexoffer;
pub mod generator;
pub mod id;
pub mod metrics;
pub mod price;
pub mod profile;
pub mod schedule;
pub mod time;

pub use codec::{CodecError, Wire};
pub use energy::{Energy, EnergyRange};
pub use error::DomainError;
pub use exec::Pool;
pub use flexoffer::{FlexOffer, FlexOfferBuilder, OfferKind};
pub use generator::{FlexOfferGenerator, GeneratorConfig};
pub use id::{ActorId, AggregateId, FlexOfferId, GroupId, NodeId, RegionId};
pub use metrics::{energy_flexibility, time_flexibility, total_flexibility};
pub use price::Price;
pub use profile::{Profile, Slice};
pub use schedule::ScheduledFlexOffer;
pub use time::{SlotSpan, TimeSlot, SLOTS_PER_DAY, SLOTS_PER_HOUR, SLOTS_PER_WEEK, SLOT_MINUTES};
