//! Monetary amounts.
//!
//! Kept deliberately small: a price is EUR per kWh (for tariffs and offer
//! activation costs) or plain EUR (for schedule cost totals). Both use f64;
//! money precision is not the subject of the paper's evaluation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A price in EUR per kWh, or a plain EUR amount when used as a total.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct Price(pub f64);

impl Price {
    /// Zero price.
    pub const ZERO: Price = Price(0.0);

    /// EUR value.
    #[inline]
    pub fn eur(self) -> f64 {
        self.0
    }

    /// Approximate equality for tests.
    pub fn approx_eq(self, other: Price, eps: f64) -> bool {
        (self.0 - other.0).abs() <= eps
    }
}

impl Add for Price {
    type Output = Price;
    fn add(self, rhs: Price) -> Price {
        Price(self.0 + rhs.0)
    }
}

impl AddAssign for Price {
    fn add_assign(&mut self, rhs: Price) {
        self.0 += rhs.0;
    }
}

impl Sub for Price {
    type Output = Price;
    fn sub(self, rhs: Price) -> Price {
        Price(self.0 - rhs.0)
    }
}

impl Neg for Price {
    type Output = Price;
    fn neg(self) -> Price {
        Price(-self.0)
    }
}

impl Mul<f64> for Price {
    type Output = Price;
    fn mul(self, rhs: f64) -> Price {
        Price(self.0 * rhs)
    }
}

impl Sum for Price {
    fn sum<I: Iterator<Item = Price>>(iter: I) -> Price {
        Price(iter.map(|p| p.0).sum())
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} EUR", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Price(2.0);
        let b = Price(0.5);
        assert_eq!((a + b).eur(), 2.5);
        assert_eq!((a - b).eur(), 1.5);
        assert_eq!((-a).eur(), -2.0);
        assert_eq!((a * 3.0).eur(), 6.0);
        let s: Price = vec![a, b].into_iter().sum();
        assert!(s.approx_eq(Price(2.5), 1e-12));
    }

    #[test]
    fn display() {
        assert_eq!(Price(1.5).to_string(), "1.5000 EUR");
    }
}
