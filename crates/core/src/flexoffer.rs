//! The flex-offer: MIRABEL's energy planning object (paper §2, Figure 3).
//!
//! A flex-offer expresses *when* and *with how much energy* a device is
//! willing to run:
//!
//! * **time flexibility** — the start may be anywhere in
//!   `[earliest_start, latest_start]`;
//! * **energy flexibility** — each profile slot may run anywhere inside its
//!   `[min, max]` energy range;
//! * **assignment deadline** — a schedule must be communicated before
//!   `assignment_before`, otherwise the prosumer falls back to the open
//!   contract (paper §1 "pending flexibilities simply timeout").

use crate::energy::EnergyRange;
use crate::error::DomainError;
use crate::id::{ActorId, FlexOfferId};
use crate::price::Price;
use crate::profile::Profile;
use crate::time::{SlotSpan, TimeSlot};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether the offer consumes or produces energy.
///
/// The paper treats production flex-offers "equivalently to flex-offers for
/// consumption" (§2); the sign convention is applied by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OfferKind {
    /// Flexible demand (EV charging, dishwasher, heat pump, ...).
    Consumption,
    /// Flexible supply (CHP, curtailable solar, ...).
    Production,
}

impl fmt::Display for OfferKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfferKind::Consumption => write!(f, "consumption"),
            OfferKind::Production => write!(f, "production"),
        }
    }
}

/// An energy planning object offered by a prosumer to its BRP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlexOffer {
    id: FlexOfferId,
    owner: ActorId,
    kind: OfferKind,
    assignment_before: TimeSlot,
    earliest_start: TimeSlot,
    latest_start: TimeSlot,
    profile: Profile,
    total_energy: Option<EnergyRange>,
    unit_price: Price,
}

impl FlexOffer {
    /// Start building a flex-offer with the given id and owner.
    pub fn builder(id: u64, owner: u64) -> FlexOfferBuilder {
        FlexOfferBuilder::new(FlexOfferId(id), ActorId(owner))
    }

    /// Offer identifier.
    pub fn id(&self) -> FlexOfferId {
        self.id
    }

    /// Owning actor (prosumer).
    pub fn owner(&self) -> ActorId {
        self.owner
    }

    /// Consumption or production.
    pub fn kind(&self) -> OfferKind {
        self.kind
    }

    /// Deadline before which a schedule must be assigned.
    pub fn assignment_before(&self) -> TimeSlot {
        self.assignment_before
    }

    /// Earliest admissible start slot.
    pub fn earliest_start(&self) -> TimeSlot {
        self.earliest_start
    }

    /// Latest admissible start slot (inclusive).
    pub fn latest_start(&self) -> TimeSlot {
        self.latest_start
    }

    /// Latest end: `latest_start + duration` (exclusive).
    pub fn latest_end(&self) -> TimeSlot {
        self.latest_start + self.profile.total_duration()
    }

    /// The energy profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Optional total-energy constraint coupling the slots
    /// (paper §6: "flex-offer energy constraints construct dependences
    /// among different intervals of a single flex-offer profile").
    pub fn total_energy(&self) -> Option<EnergyRange> {
        self.total_energy
    }

    /// Activation price in EUR/kWh that the BRP pays the prosumer.
    pub fn unit_price(&self) -> Price {
        self.unit_price
    }

    /// Time flexibility in slots: `latest_start - earliest_start`
    /// (paper §7 "scheduling flexibility").
    pub fn time_flexibility(&self) -> SlotSpan {
        (self.latest_start - self.earliest_start) as SlotSpan
    }

    /// Profile duration in slots.
    pub fn duration(&self) -> SlotSpan {
        self.profile.total_duration()
    }

    /// Assignment flexibility relative to `now`: the time left for
    /// (re-)scheduling before the assignment deadline (paper §7).
    pub fn assignment_flexibility(&self, now: TimeSlot) -> SlotSpan {
        now.span_to(self.assignment_before).unwrap_or(0)
    }

    /// Whether the offer has expired (assignment deadline passed) at `now`.
    pub fn is_expired(&self, now: TimeSlot) -> bool {
        now >= self.assignment_before
    }

    /// Signed per-slot demand contribution: consumption is positive demand,
    /// production is negative demand. Used by the scheduler's imbalance
    /// arithmetic.
    pub fn demand_sign(&self) -> f64 {
        match self.kind {
            OfferKind::Consumption => 1.0,
            OfferKind::Production => -1.0,
        }
    }

    /// Structural validation; called by the builder and usable on
    /// deserialized offers.
    pub fn validate(&self) -> Result<(), DomainError> {
        if self.latest_start < self.earliest_start {
            return Err(DomainError::InvalidFlexOffer(format!(
                "latest_start {} precedes earliest_start {}",
                self.latest_start, self.earliest_start
            )));
        }
        if self.assignment_before > self.earliest_start {
            return Err(DomainError::InvalidFlexOffer(format!(
                "assignment_before {} is after earliest_start {}; the offer \
                 could start before it was assigned",
                self.assignment_before, self.earliest_start
            )));
        }
        if let Some(te) = self.total_energy {
            let lo = self.profile.min_total_energy();
            let hi = self.profile.max_total_energy();
            if te.max() < lo || te.min() > hi {
                return Err(DomainError::InvalidFlexOffer(format!(
                    "total energy constraint {te} cannot be met by profile [{lo}, {hi}]"
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for FlexOffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} start in [{}, {}] {}",
            self.id, self.kind, self.earliest_start, self.latest_start, self.profile
        )
    }
}

/// Builder for [`FlexOffer`]; validates on [`FlexOfferBuilder::build`].
#[derive(Debug, Clone)]
pub struct FlexOfferBuilder {
    id: FlexOfferId,
    owner: ActorId,
    kind: OfferKind,
    assignment_before: Option<TimeSlot>,
    earliest_start: TimeSlot,
    latest_start: Option<TimeSlot>,
    profile: Option<Profile>,
    total_energy: Option<EnergyRange>,
    unit_price: Price,
}

impl FlexOfferBuilder {
    fn new(id: FlexOfferId, owner: ActorId) -> FlexOfferBuilder {
        FlexOfferBuilder {
            id,
            owner,
            kind: OfferKind::Consumption,
            assignment_before: None,
            earliest_start: TimeSlot::EPOCH,
            latest_start: None,
            profile: None,
            total_energy: None,
            unit_price: Price::ZERO,
        }
    }

    /// Set consumption vs production.
    pub fn kind(mut self, kind: OfferKind) -> Self {
        self.kind = kind;
        self
    }

    /// Set the earliest start slot.
    pub fn earliest_start(mut self, t: TimeSlot) -> Self {
        self.earliest_start = t;
        self
    }

    /// Set the latest start slot (inclusive). Defaults to `earliest_start`
    /// (no time flexibility) when unset.
    pub fn latest_start(mut self, t: TimeSlot) -> Self {
        self.latest_start = Some(t);
        self
    }

    /// Convenience: set time flexibility in slots instead of latest start.
    pub fn time_flexibility(mut self, slots: SlotSpan) -> Self {
        self.latest_start = Some(self.earliest_start + slots);
        self
    }

    /// Set the assignment deadline. Defaults to `earliest_start`.
    pub fn assignment_before(mut self, t: TimeSlot) -> Self {
        self.assignment_before = Some(t);
        self
    }

    /// Set the profile (required).
    pub fn profile(mut self, p: Profile) -> Self {
        self.profile = Some(p);
        self
    }

    /// Set an optional total energy constraint.
    pub fn total_energy(mut self, r: EnergyRange) -> Self {
        self.total_energy = Some(r);
        self
    }

    /// Set the activation price (EUR/kWh).
    pub fn unit_price(mut self, p: Price) -> Self {
        self.unit_price = p;
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<FlexOffer, DomainError> {
        let profile = self
            .profile
            .ok_or_else(|| DomainError::InvalidFlexOffer("profile is required".into()))?;
        let offer = FlexOffer {
            id: self.id,
            owner: self.owner,
            kind: self.kind,
            assignment_before: self.assignment_before.unwrap_or(self.earliest_start),
            earliest_start: self.earliest_start,
            latest_start: self.latest_start.unwrap_or(self.earliest_start),
            profile,
            total_energy: self.total_energy,
            unit_price: self.unit_price,
        };
        offer.validate()?;
        Ok(offer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyRange;

    fn ev_offer() -> FlexOffer {
        // §2 scenario: 10pm plug-in, 2h charge, latest start 5am.
        FlexOffer::builder(1, 9)
            .kind(OfferKind::Consumption)
            .earliest_start(TimeSlot(88))
            .latest_start(TimeSlot(116))
            .assignment_before(TimeSlot(88))
            .profile(Profile::uniform(8, EnergyRange::new(5.0, 7.0).unwrap()))
            .build()
            .unwrap()
    }

    #[test]
    fn ev_scenario_properties() {
        let o = ev_offer();
        assert_eq!(o.time_flexibility(), 28);
        assert_eq!(o.duration(), 8);
        assert_eq!(o.latest_end(), TimeSlot(124)); // 7am next day
        assert_eq!(o.demand_sign(), 1.0);
        assert_eq!(o.kind().to_string(), "consumption");
    }

    #[test]
    fn builder_defaults() {
        let o = FlexOffer::builder(2, 1)
            .earliest_start(TimeSlot(10))
            .profile(Profile::uniform(1, EnergyRange::fixed(1.0)))
            .build()
            .unwrap();
        assert_eq!(o.latest_start(), TimeSlot(10));
        assert_eq!(o.time_flexibility(), 0);
        assert_eq!(o.assignment_before(), TimeSlot(10));
        assert_eq!(o.unit_price(), Price::ZERO);
    }

    #[test]
    fn rejects_inverted_start_window() {
        let e = FlexOffer::builder(3, 1)
            .earliest_start(TimeSlot(10))
            .latest_start(TimeSlot(5))
            .profile(Profile::uniform(1, EnergyRange::fixed(1.0)))
            .build();
        assert!(matches!(e, Err(DomainError::InvalidFlexOffer(_))));
    }

    #[test]
    fn rejects_late_assignment_deadline() {
        let e = FlexOffer::builder(4, 1)
            .earliest_start(TimeSlot(10))
            .latest_start(TimeSlot(20))
            .assignment_before(TimeSlot(15))
            .profile(Profile::uniform(1, EnergyRange::fixed(1.0)))
            .build();
        assert!(e.is_err());
    }

    #[test]
    fn rejects_unsatisfiable_total_energy() {
        let e = FlexOffer::builder(5, 1)
            .earliest_start(TimeSlot(0))
            .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
            .total_energy(EnergyRange::new(10.0, 20.0).unwrap())
            .build();
        assert!(e.is_err());
        // overlapping constraint is fine
        let ok = FlexOffer::builder(6, 1)
            .earliest_start(TimeSlot(0))
            .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
            .total_energy(EnergyRange::new(3.0, 3.5).unwrap())
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn requires_profile() {
        assert!(FlexOffer::builder(7, 1).build().is_err());
    }

    #[test]
    fn expiry_and_assignment_flexibility() {
        let o = ev_offer();
        assert!(!o.is_expired(TimeSlot(80)));
        assert!(o.is_expired(TimeSlot(88)));
        assert_eq!(o.assignment_flexibility(TimeSlot(80)), 8);
        assert_eq!(o.assignment_flexibility(TimeSlot(90)), 0);
    }

    #[test]
    fn production_sign() {
        let o = FlexOffer::builder(8, 1)
            .kind(OfferKind::Production)
            .earliest_start(TimeSlot(0))
            .profile(Profile::uniform(1, EnergyRange::fixed(1.0)))
            .build()
            .unwrap();
        assert_eq!(o.demand_sign(), -1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let o = ev_offer();
        let json = serde_json_like(&o);
        assert!(json.contains("Consumption"));
    }

    // serde_json is not a dependency; exercise Serialize via the compact
    // debug of the serde data model using bincode-free approach: just make
    // sure the derives exist by serializing to a string with serde's
    // fmt-based test helper.
    fn serde_json_like(o: &FlexOffer) -> String {
        format!("{o:?}")
    }
}
