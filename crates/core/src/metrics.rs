//! Flexibility metrics (paper §4 "flexibility requirement", §7 pricing).

use crate::energy::Energy;
use crate::flexoffer::FlexOffer;
use crate::time::SlotSpan;

/// Time flexibility of an offer in slots.
pub fn time_flexibility(offer: &FlexOffer) -> SlotSpan {
    offer.time_flexibility()
}

/// Energy flexibility: summed per-slot range width in kWh.
pub fn energy_flexibility(offer: &FlexOffer) -> Energy {
    offer.profile().energy_flexibility()
}

/// A combined scalar flexibility measure used when comparing aggregation
/// configurations: time flexibility (slots) weighted by `time_weight` plus
/// energy flexibility (kWh) weighted by `energy_weight`.
pub fn total_flexibility(offer: &FlexOffer, time_weight: f64, energy_weight: f64) -> f64 {
    time_flexibility(offer) as f64 * time_weight + energy_flexibility(offer).kwh() * energy_weight
}

/// Sum of time flexibilities over a population of offers (used by the
/// Figure 5(c) loss computation).
pub fn population_time_flexibility<'a>(offers: impl Iterator<Item = &'a FlexOffer>) -> u64 {
    offers.map(|o| o.time_flexibility() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyRange;
    use crate::profile::Profile;
    use crate::time::TimeSlot;

    fn offer(tf: SlotSpan, width: f64) -> FlexOffer {
        FlexOffer::builder(1, 1)
            .earliest_start(TimeSlot(0))
            .time_flexibility(tf)
            .profile(Profile::uniform(
                4,
                EnergyRange::new(1.0, 1.0 + width).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn time_flex() {
        assert_eq!(time_flexibility(&offer(12, 0.0)), 12);
    }

    #[test]
    fn energy_flex() {
        let e = energy_flexibility(&offer(0, 0.5));
        assert!(e.approx_eq(Energy::from_kwh(2.0), 1e-12));
    }

    #[test]
    fn combined() {
        let f = total_flexibility(&offer(10, 0.5), 1.0, 2.0);
        assert!((f - (10.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn population_sum() {
        let offers = [offer(3, 0.0), offer(5, 0.0)];
        assert_eq!(population_time_flexibility(offers.iter()), 8);
    }
}
