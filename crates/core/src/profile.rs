//! Flex-offer energy profiles.
//!
//! A profile is a run-length-encoded sequence of [`Slice`]s. Each slice
//! spans `duration` consecutive metering slots, every one of which may be
//! scheduled with any energy amount inside the slice's [`EnergyRange`]
//! (paper §2, Figure 3: the gray/shaded profile with min/max energy).

use crate::energy::{Energy, EnergyRange};
use crate::error::DomainError;
use crate::time::SlotSpan;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A run of consecutive slots sharing the same per-slot energy bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slice {
    /// Number of consecutive metering slots covered by this slice (≥ 1).
    pub duration: SlotSpan,
    /// Per-slot energy bounds within the slice.
    pub energy: EnergyRange,
}

impl Slice {
    /// Construct a slice; `duration` must be at least 1.
    pub fn new(duration: SlotSpan, energy: EnergyRange) -> Result<Slice, DomainError> {
        if duration == 0 {
            return Err(DomainError::InvalidProfile(
                "slice duration must be >= 1".into(),
            ));
        }
        Ok(Slice { duration, energy })
    }

    /// Minimum total energy over the whole slice.
    pub fn min_energy(&self) -> Energy {
        self.energy.min() * self.duration as f64
    }

    /// Maximum total energy over the whole slice.
    pub fn max_energy(&self) -> Energy {
        self.energy.max() * self.duration as f64
    }
}

/// A flex-offer energy profile: a non-empty sequence of slices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    slices: Vec<Slice>,
}

impl Profile {
    /// Build a profile from slices; must be non-empty and every slice valid.
    pub fn new(slices: Vec<Slice>) -> Result<Profile, DomainError> {
        if slices.is_empty() {
            return Err(DomainError::InvalidProfile("profile has no slices".into()));
        }
        if slices.iter().any(|s| s.duration == 0) {
            return Err(DomainError::InvalidProfile(
                "profile contains zero-duration slice".into(),
            ));
        }
        Ok(Profile { slices })
    }

    /// A profile of `duration` slots, all sharing `energy` bounds.
    pub fn uniform(duration: SlotSpan, energy: EnergyRange) -> Profile {
        Profile {
            slices: vec![Slice { duration, energy }],
        }
    }

    /// Build a profile directly from per-slot ranges (one slice per slot,
    /// no run-length merging).
    pub fn from_slot_ranges(ranges: Vec<EnergyRange>) -> Result<Profile, DomainError> {
        if ranges.is_empty() {
            return Err(DomainError::InvalidProfile("profile has no slots".into()));
        }
        Ok(Profile {
            slices: ranges
                .into_iter()
                .map(|energy| Slice {
                    duration: 1,
                    energy,
                })
                .collect(),
        })
    }

    /// The slices of the profile.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// Number of slices (run-length-encoded intervals).
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Total duration in metering slots.
    pub fn total_duration(&self) -> SlotSpan {
        self.slices.iter().map(|s| s.duration).sum()
    }

    /// Iterator over the per-slot energy bounds, flattening run-length
    /// encoding. Yields exactly [`Profile::total_duration`] items.
    pub fn slot_ranges(&self) -> impl Iterator<Item = EnergyRange> + '_ {
        self.slices
            .iter()
            .flat_map(|s| std::iter::repeat_n(s.energy, s.duration as usize))
    }

    /// Energy bounds of the slot at `offset` from the profile start.
    pub fn slot_range(&self, offset: SlotSpan) -> Option<EnergyRange> {
        let mut at = 0;
        for s in &self.slices {
            if offset < at + s.duration {
                return Some(s.energy);
            }
            at += s.duration;
        }
        None
    }

    /// Minimum total energy if every slot runs at its lower bound.
    pub fn min_total_energy(&self) -> Energy {
        self.slices.iter().map(|s| s.min_energy()).sum()
    }

    /// Maximum total energy if every slot runs at its upper bound.
    pub fn max_total_energy(&self) -> Energy {
        self.slices.iter().map(|s| s.max_energy()).sum()
    }

    /// Total energy flexibility: sum over slots of the range width
    /// (paper §7 "energy flexibility — the amount of energy which is
    /// dispatchable by the BRP").
    pub fn energy_flexibility(&self) -> Energy {
        self.slices
            .iter()
            .map(|s| s.energy.width() * s.duration as f64)
            .sum()
    }

    /// Merge adjacent slices with identical bounds (canonical form).
    pub fn normalize(&self) -> Profile {
        let mut out: Vec<Slice> = Vec::with_capacity(self.slices.len());
        for s in &self.slices {
            match out.last_mut() {
                Some(last) if last.energy == s.energy => last.duration += s.duration,
                _ => out.push(*s),
            }
        }
        Profile { slices: out }
    }

    /// The per-slot schedule that runs every slot at its lower bound.
    pub fn min_schedule(&self) -> Vec<Energy> {
        self.slot_ranges().map(|r| r.min()).collect()
    }

    /// The per-slot schedule that runs every slot at its upper bound.
    pub fn max_schedule(&self) -> Vec<Energy> {
        self.slot_ranges().map(|r| r.max()).collect()
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profile[")?;
        for (i, s) in self.slices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}x{}", s.duration, s.energy)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(min: f64, max: f64) -> EnergyRange {
        EnergyRange::new(min, max).unwrap()
    }

    #[test]
    fn rejects_empty_profile() {
        assert!(Profile::new(vec![]).is_err());
        assert!(Profile::from_slot_ranges(vec![]).is_err());
    }

    #[test]
    fn rejects_zero_duration_slice() {
        assert!(Slice::new(0, r(0.0, 1.0)).is_err());
        let bogus = Slice {
            duration: 0,
            energy: r(0.0, 1.0),
        };
        assert!(Profile::new(vec![bogus]).is_err());
    }

    #[test]
    fn totals() {
        let p = Profile::new(vec![
            Slice::new(2, r(1.0, 2.0)).unwrap(),
            Slice::new(1, r(0.0, 4.0)).unwrap(),
        ])
        .unwrap();
        assert_eq!(p.total_duration(), 3);
        assert!(p.min_total_energy().approx_eq(Energy::from_kwh(2.0), 1e-12));
        assert!(p.max_total_energy().approx_eq(Energy::from_kwh(8.0), 1e-12));
        assert!(p
            .energy_flexibility()
            .approx_eq(Energy::from_kwh(6.0), 1e-12));
    }

    #[test]
    fn slot_ranges_flatten() {
        let p = Profile::new(vec![
            Slice::new(2, r(1.0, 2.0)).unwrap(),
            Slice::new(1, r(0.0, 4.0)).unwrap(),
        ])
        .unwrap();
        let flat: Vec<_> = p.slot_ranges().collect();
        assert_eq!(flat.len(), 3);
        assert_eq!(flat[0], r(1.0, 2.0));
        assert_eq!(flat[1], r(1.0, 2.0));
        assert_eq!(flat[2], r(0.0, 4.0));
    }

    #[test]
    fn slot_range_lookup() {
        let p = Profile::new(vec![
            Slice::new(2, r(1.0, 2.0)).unwrap(),
            Slice::new(3, r(0.0, 4.0)).unwrap(),
        ])
        .unwrap();
        assert_eq!(p.slot_range(0), Some(r(1.0, 2.0)));
        assert_eq!(p.slot_range(1), Some(r(1.0, 2.0)));
        assert_eq!(p.slot_range(2), Some(r(0.0, 4.0)));
        assert_eq!(p.slot_range(4), Some(r(0.0, 4.0)));
        assert_eq!(p.slot_range(5), None);
    }

    #[test]
    fn normalize_merges_adjacent_equal_slices() {
        let p = Profile::new(vec![
            Slice::new(1, r(1.0, 2.0)).unwrap(),
            Slice::new(2, r(1.0, 2.0)).unwrap(),
            Slice::new(1, r(0.0, 0.0)).unwrap(),
        ])
        .unwrap();
        let n = p.normalize();
        assert_eq!(n.slice_count(), 2);
        assert_eq!(n.slices()[0].duration, 3);
        assert_eq!(n.total_duration(), p.total_duration());
        assert_eq!(n.min_total_energy(), p.min_total_energy());
    }

    #[test]
    fn min_max_schedules() {
        let p = Profile::uniform(3, r(1.0, 2.0));
        assert_eq!(p.min_schedule(), vec![Energy::from_kwh(1.0); 3]);
        assert_eq!(p.max_schedule(), vec![Energy::from_kwh(2.0); 3]);
    }

    #[test]
    fn display_compact() {
        let p = Profile::uniform(3, r(1.0, 2.0));
        assert!(p.to_string().starts_with("profile[3x"));
    }
}
