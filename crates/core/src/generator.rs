//! Reproducible synthetic flex-offer corpus.
//!
//! The paper's aggregation experiment (§9, Figure 5) uses "a flex-offer
//! dataset with around 800000 artificially generated flex-offers". That data
//! set is not published, so this module regenerates an equivalent corpus:
//! earliest starts uniform over a multi-day window, bounded uniform time
//! flexibility, short multi-slice profiles with per-slot energy flexibility.
//!
//! The default parameters are chosen so that exact-match grouping (the
//! paper's P0) yields a compression ratio of about four on 800 k offers —
//! matching the paper's observation that P0's "compression ratio … is still
//! above 4".

use crate::energy::EnergyRange;
use crate::flexoffer::{FlexOffer, OfferKind};
use crate::price::Price;
use crate::profile::{Profile, Slice};
use crate::time::{SlotSpan, TimeSlot, SLOTS_PER_DAY, SLOTS_PER_WEEK};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic corpus.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// First admissible earliest-start slot.
    pub window_start: TimeSlot,
    /// Earliest starts are uniform in `[window_start, window_start + window_slots)`.
    pub window_slots: SlotSpan,
    /// Time flexibility is uniform in `0..=max_time_flexibility`.
    pub max_time_flexibility: SlotSpan,
    /// Profile slice count is uniform in `min_slices..=max_slices`.
    pub min_slices: u32,
    /// See `min_slices`.
    pub max_slices: u32,
    /// Each slice's duration is uniform in `1..=max_slice_duration` slots.
    pub max_slice_duration: SlotSpan,
    /// Per-slot baseline energy is uniform in this kWh interval.
    pub energy_per_slot: (f64, f64),
    /// Upper bound of a slot is `base * (1 + u)` with `u` uniform in
    /// `[0, energy_flex_fraction]`.
    pub energy_flex_fraction: f64,
    /// Fraction of offers that are production rather than consumption.
    pub production_fraction: f64,
    /// Activation price uniform in this EUR/kWh interval.
    pub price_range: (f64, f64),
    /// The assignment deadline is `earliest_start - lead` with `lead`
    /// uniform in `assignment_lead.0..=assignment_lead.1`.
    pub assignment_lead: (SlotSpan, SlotSpan),
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            window_start: TimeSlot(0),
            window_slots: SLOTS_PER_WEEK,
            max_time_flexibility: 3 * SLOTS_PER_DAY - 1,
            min_slices: 1,
            max_slices: 4,
            max_slice_duration: 4,
            energy_per_slot: (0.25, 5.0),
            energy_flex_fraction: 0.3,
            production_fraction: 0.0,
            price_range: (0.01, 0.10),
            assignment_lead: (4, 32),
        }
    }
}

/// Deterministic, seedable flex-offer stream.
///
/// ```
/// use mirabel_core::{FlexOfferGenerator, GeneratorConfig};
/// let offers: Vec<_> = FlexOfferGenerator::new(GeneratorConfig::default(), 7)
///     .take(100)
///     .collect();
/// assert_eq!(offers.len(), 100);
/// for o in &offers {
///     o.validate().unwrap();
/// }
/// ```
#[derive(Debug)]
pub struct FlexOfferGenerator {
    config: GeneratorConfig,
    rng: StdRng,
    next_id: u64,
}

impl FlexOfferGenerator {
    /// Create a generator with the given config and RNG seed.
    pub fn new(config: GeneratorConfig, seed: u64) -> FlexOfferGenerator {
        FlexOfferGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// Generator with default config.
    pub fn with_seed(seed: u64) -> FlexOfferGenerator {
        FlexOfferGenerator::new(GeneratorConfig::default(), seed)
    }

    /// The configuration in use.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    fn gen_profile(&mut self) -> Profile {
        let c = &self.config;
        let n = self.rng.gen_range(c.min_slices..=c.max_slices);
        let mut slices = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let duration = self.rng.gen_range(1..=c.max_slice_duration);
            let base = self
                .rng
                .gen_range(c.energy_per_slot.0..=c.energy_per_slot.1);
            let flex = self.rng.gen_range(0.0..=c.energy_flex_fraction);
            let energy =
                EnergyRange::new(base, base * (1.0 + flex)).expect("generator bounds are ordered");
            slices.push(Slice { duration, energy });
        }
        Profile::new(slices).expect("generator profiles are non-empty")
    }
}

impl Iterator for FlexOfferGenerator {
    type Item = FlexOffer;

    fn next(&mut self) -> Option<FlexOffer> {
        let id = self.next_id;
        self.next_id += 1;

        let profile = self.gen_profile();
        let (w0, ws) = (self.config.window_start, self.config.window_slots);
        let earliest = w0 + self.rng.gen_range(0..ws.max(1));
        let tf = self.rng.gen_range(0..=self.config.max_time_flexibility);
        let lead = self
            .rng
            .gen_range(self.config.assignment_lead.0..=self.config.assignment_lead.1);
        let kind = if self.rng.gen_bool(self.config.production_fraction) {
            OfferKind::Production
        } else {
            OfferKind::Consumption
        };
        let price = self
            .rng
            .gen_range(self.config.price_range.0..=self.config.price_range.1);

        let offer = FlexOffer::builder(id, id % 10_000)
            .kind(kind)
            .earliest_start(earliest)
            .time_flexibility(tf)
            .assignment_before(earliest - lead)
            .profile(profile)
            .unit_price(Price(price))
            .build()
            .expect("generator produces valid offers");
        Some(offer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<_> = FlexOfferGenerator::with_seed(42).take(50).collect();
        let b: Vec<_> = FlexOfferGenerator::with_seed(42).take(50).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = FlexOfferGenerator::with_seed(1).take(50).collect();
        let b: Vec<_> = FlexOfferGenerator::with_seed(2).take(50).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn all_offers_valid_and_in_window() {
        let cfg = GeneratorConfig::default();
        let (w0, ws, tf) = (cfg.window_start, cfg.window_slots, cfg.max_time_flexibility);
        for o in FlexOfferGenerator::new(cfg, 3).take(500) {
            o.validate().unwrap();
            assert!(o.earliest_start() >= w0);
            assert!(o.earliest_start() < w0 + ws);
            assert!(o.time_flexibility() <= tf);
            assert!(o.duration() >= 1);
        }
    }

    #[test]
    fn production_fraction_respected() {
        let cfg = GeneratorConfig {
            production_fraction: 1.0,
            ..GeneratorConfig::default()
        };
        assert!(FlexOfferGenerator::new(cfg, 1)
            .take(20)
            .all(|o| o.kind() == OfferKind::Production));
    }

    #[test]
    fn ids_unique_and_sequential() {
        let ids: Vec<_> = FlexOfferGenerator::with_seed(9)
            .take(10)
            .map(|o| o.id().value())
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn p0_compression_plausible() {
        // Exact-match grouping on (earliest_start, time_flexibility) over
        // 20k offers should give compression well below the group count
        // bound but above 1 — sanity check of the distribution shape used
        // by the Figure 5 experiment.
        use std::collections::HashSet;
        let offers: Vec<_> = FlexOfferGenerator::with_seed(5).take(20_000).collect();
        let distinct: HashSet<_> = offers
            .iter()
            .map(|o| (o.earliest_start(), o.time_flexibility()))
            .collect();
        let compression = offers.len() as f64 / distinct.len() as f64;
        assert!(compression > 1.0, "compression {compression}");
    }
}
