//! Energy quantities and per-slot flexibility bounds.

use crate::error::DomainError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An amount of electric energy in kilowatt-hours.
///
/// Positive values denote energy in the direction implied by the surrounding
/// context (a consumption offer consumes positive energy; a production offer
/// produces positive energy). Signed arithmetic is supported because
/// imbalance computations subtract supply from demand.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Construct from kilowatt-hours. `NaN` is rejected at construction so
    /// downstream ordering is total in practice.
    #[inline]
    pub fn kwh_checked(v: f64) -> Result<Energy, DomainError> {
        if v.is_nan() {
            Err(DomainError::NotANumber("energy"))
        } else {
            Ok(Energy(v))
        }
    }

    /// Construct from kilowatt-hours; panics on NaN (programmer error).
    #[inline]
    pub fn from_kwh(v: f64) -> Energy {
        Energy::kwh_checked(v).expect("energy must not be NaN")
    }

    /// Value in kilowatt-hours.
    #[inline]
    pub fn kwh(self) -> f64 {
        self.0
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Energy {
        Energy(self.0.abs())
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }

    /// Clamp into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Energy, hi: Energy) -> Energy {
        Energy(self.0.clamp(lo.0, hi.0))
    }

    /// Approximate equality within `eps` kWh (for tests and float-tolerant
    /// invariant checks).
    #[inline]
    pub fn approx_eq(self, other: Energy, eps: f64) -> bool {
        (self.0 - other.0).abs() <= eps
    }
}

impl From<f64> for Energy {
    fn from(v: f64) -> Energy {
        Energy::from_kwh(v)
    }
}

impl Add for Energy {
    type Output = Energy;
    #[inline]
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    #[inline]
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    #[inline]
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl SubAssign for Energy {
    #[inline]
    fn sub_assign(&mut self, rhs: Energy) {
        self.0 -= rhs.0;
    }
}

impl Neg for Energy {
    type Output = Energy;
    #[inline]
    fn neg(self) -> Energy {
        Energy(-self.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    #[inline]
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        Energy(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} kWh", self.0)
    }
}

/// An inclusive energy interval `[min, max]`.
///
/// This is the *energy flexibility* of one profile slot: the scheduler may
/// fix any amount inside the range (paper §4, "energy flexibility — the
/// ability to scale energy up or down at a given time").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyRange {
    min: Energy,
    max: Energy,
}

impl EnergyRange {
    /// Build a range; fails when `min > max` or either bound is NaN.
    pub fn new(min_kwh: f64, max_kwh: f64) -> Result<EnergyRange, DomainError> {
        let min = Energy::kwh_checked(min_kwh)?;
        let max = Energy::kwh_checked(max_kwh)?;
        if min > max {
            return Err(DomainError::InvertedRange {
                min: min_kwh,
                max: max_kwh,
            });
        }
        Ok(EnergyRange { min, max })
    }

    /// Degenerate range containing exactly `kwh`.
    pub fn fixed(kwh: f64) -> EnergyRange {
        let e = Energy::from_kwh(kwh);
        EnergyRange { min: e, max: e }
    }

    /// Zero-width range at zero energy.
    pub const ZERO: EnergyRange = EnergyRange {
        min: Energy::ZERO,
        max: Energy::ZERO,
    };

    /// Lower bound.
    #[inline]
    pub fn min(&self) -> Energy {
        self.min
    }

    /// Upper bound.
    #[inline]
    pub fn max(&self) -> Energy {
        self.max
    }

    /// Width of the range (`max - min`), the slot's energy flexibility.
    #[inline]
    pub fn width(&self) -> Energy {
        self.max - self.min
    }

    /// Whether `e` lies inside the range, with a small tolerance so that
    /// round-tripped floating-point schedules still validate.
    #[inline]
    pub fn contains(&self, e: Energy, eps: f64) -> bool {
        e.kwh() >= self.min.kwh() - eps && e.kwh() <= self.max.kwh() + eps
    }

    /// Clamp `e` into the range.
    #[inline]
    pub fn clamp(&self, e: Energy) -> Energy {
        e.clamp(self.min, self.max)
    }

    /// Minkowski sum: the range of the sum of two independent quantities.
    /// This is how aggregated flex-offer profiles accumulate member slots.
    #[inline]
    pub fn sum(&self, other: &EnergyRange) -> EnergyRange {
        EnergyRange {
            min: self.min + other.min,
            max: self.max + other.max,
        }
    }

    /// Scale both bounds by a non-negative factor.
    pub fn scale(&self, factor: f64) -> EnergyRange {
        debug_assert!(factor >= 0.0);
        EnergyRange {
            min: self.min * factor,
            max: self.max * factor,
        }
    }

    /// Point inside the range at `frac` ∈ `[0,1]` between min and max.
    #[inline]
    pub fn lerp(&self, frac: f64) -> Energy {
        self.min + (self.max - self.min) * frac.clamp(0.0, 1.0)
    }

    /// The fraction at which `e` sits inside the range; 0 when the range is
    /// degenerate.
    pub fn fraction_of(&self, e: Energy) -> f64 {
        let w = self.width().kwh();
        if w <= 0.0 {
            0.0
        } else {
            ((e - self.min).kwh() / w).clamp(0.0, 1.0)
        }
    }

    /// Intersection of two ranges, if non-empty.
    pub fn intersect(&self, other: &EnergyRange) -> Option<EnergyRange> {
        let min = self.min.max(other.min);
        let max = self.max.min(other.max);
        if min > max {
            None
        } else {
            Some(EnergyRange { min, max })
        }
    }
}

impl fmt::Display for EnergyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3}, {:.3}] kWh", self.min.kwh(), self.max.kwh())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_arithmetic() {
        let a = Energy::from_kwh(3.0);
        let b = Energy::from_kwh(1.5);
        assert_eq!((a + b).kwh(), 4.5);
        assert_eq!((a - b).kwh(), 1.5);
        assert_eq!((-a).kwh(), -3.0);
        assert_eq!((a * 2.0).kwh(), 6.0);
        assert_eq!((a / 2.0).kwh(), 1.5);
        let s: Energy = vec![a, b, b].into_iter().sum();
        assert!(s.approx_eq(Energy::from_kwh(6.0), 1e-12));
    }

    #[test]
    fn energy_rejects_nan() {
        assert!(Energy::kwh_checked(f64::NAN).is_err());
        assert!(Energy::kwh_checked(f64::INFINITY).is_ok());
    }

    #[test]
    fn energy_min_max_clamp() {
        let a = Energy::from_kwh(3.0);
        let b = Energy::from_kwh(5.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Energy::from_kwh(9.0).clamp(a, b), b);
        assert_eq!(Energy::from_kwh(1.0).clamp(a, b), a);
        assert_eq!(Energy::from_kwh(-2.0).abs().kwh(), 2.0);
    }

    #[test]
    fn range_construction() {
        assert!(EnergyRange::new(1.0, 2.0).is_ok());
        assert!(EnergyRange::new(2.0, 1.0).is_err());
        assert!(EnergyRange::new(f64::NAN, 1.0).is_err());
        let f = EnergyRange::fixed(4.0);
        assert_eq!(f.width(), Energy::ZERO);
    }

    #[test]
    fn range_contains_with_tolerance() {
        let r = EnergyRange::new(1.0, 2.0).unwrap();
        assert!(r.contains(Energy::from_kwh(1.0), 0.0));
        assert!(r.contains(Energy::from_kwh(2.0), 0.0));
        assert!(!r.contains(Energy::from_kwh(2.1), 0.0));
        assert!(r.contains(Energy::from_kwh(2.0000001), 1e-6));
    }

    #[test]
    fn range_minkowski_sum() {
        let a = EnergyRange::new(1.0, 2.0).unwrap();
        let b = EnergyRange::new(0.5, 3.0).unwrap();
        let s = a.sum(&b);
        assert_eq!(s.min().kwh(), 1.5);
        assert_eq!(s.max().kwh(), 5.0);
    }

    #[test]
    fn range_lerp_and_fraction_roundtrip() {
        let r = EnergyRange::new(2.0, 6.0).unwrap();
        let e = r.lerp(0.25);
        assert!(e.approx_eq(Energy::from_kwh(3.0), 1e-12));
        assert!((r.fraction_of(e) - 0.25).abs() < 1e-12);
        // degenerate range
        let d = EnergyRange::fixed(1.0);
        assert_eq!(d.fraction_of(Energy::from_kwh(1.0)), 0.0);
        assert_eq!(d.lerp(0.7).kwh(), 1.0);
    }

    #[test]
    fn range_intersection() {
        let a = EnergyRange::new(1.0, 3.0).unwrap();
        let b = EnergyRange::new(2.0, 5.0).unwrap();
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.min().kwh(), 2.0);
        assert_eq!(i.max().kwh(), 3.0);
        let c = EnergyRange::new(4.0, 5.0).unwrap();
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn range_scale() {
        let r = EnergyRange::new(1.0, 2.0).unwrap().scale(2.0);
        assert_eq!(r.min().kwh(), 2.0);
        assert_eq!(r.max().kwh(), 4.0);
    }
}
