//! The shared deterministic worker pool every parallel path in the
//! workspace runs on (paper §5 calls for partition-parallel model
//! estimation; the same executor also drives shard-parallel aggregate
//! flushes, multi-start scheduling chains, and — since the concurrent
//! node drivers landed — whole hierarchy nodes planning side by side).
//!
//! ## Why a persistent pool
//!
//! MIRABEL's node runs forecasting, aggregation and scheduling
//! *continuously*: every trickle flush and every incremental replan used
//! to spawn (and join) a fresh set of `std::thread::scope` workers,
//! paying thread creation latency on the steady-state hot path — often
//! more than the work itself for a few-microsecond trickle fold. A
//! [`Pool`] keeps its workers parked on a condvar between calls, so
//! dispatching a batch of tasks costs a wake-up, not a spawn.
//!
//! ## One queue, many callers
//!
//! The pool's heart is a single FIFO **work queue** shared by every
//! lane. Two kinds of work flow through it:
//!
//! * **Batches** ([`Pool::run`]): `n_tasks` closures `f(0) .. f(n-1)`
//!   whose results come back **in task-index order**. Lanes claim
//!   indices from a shared counter, so any number of lanes can chew on
//!   the same batch.
//! * **Submissions** ([`Pool::submit`]): independent one-shot tasks,
//!   each returning a [`Handle`] the caller joins whenever (and in
//!   whatever order) it likes.
//!
//! Because the queue is shared, **concurrent top-level callers share
//! workers**. An earlier revision serialized here: a busy `run` meant
//! any nested or racing `run` silently fell back to inline-serial
//! execution on its caller — correct, but a 32-core box simulating 10k
//! prosumers planned its nodes one at a time. Now a `run` that arrives
//! while another is in flight enqueues its batch behind it and all
//! lanes — workers, the first caller, the second caller — drain the
//! queue together. Callers waiting for their own batch (or joining a
//! [`Handle`]) *help*: they execute other queued work instead of
//! blocking, which both keeps cores busy and makes joining from inside
//! a pool task deadlock-free at any width. [`Pool::stats`] exposes the
//! dispatch counters; `inline_serial_fallbacks` staying at zero **is**
//! the claim that the old pathological path is gone.
//!
//! ## Why determinism survives
//!
//! [`Pool::run`] returns results **in task-index order**, whatever the
//! worker count or OS scheduling; [`Handle`]s are joined in an order
//! the caller controls. Callers therefore keep the invariant the whole
//! workspace is built on: *parallelism never changes output*. The
//! aggregate flush merges shard results in sorted sub-group order,
//! best-of-K scheduling chains tie-break on chain index, EGRV fitting
//! installs coefficients by period index, and the simulation's level
//! pump sends each node's envelopes in node-list order — all of which
//! reduce to "results arrive indexed by task, not by completion time".
//! Which lane runs a task is scheduling-dependent, but since each task
//! is a pure function of its index, the *result vector* is
//! bit-identical for any width.
//!
//! ## Sizing and sharing
//!
//! [`Pool::global`] is the lazily-created process-wide default, sized to
//! [`std::thread::available_parallelism`]. Components default to it, so
//! an entire `edms` hierarchy — every BRP, the TSO, their pipelines and
//! repair chains — shares one set of worker threads instead of spawning
//! per node per round. Pass an explicit [`Pool::new`] handle (they are
//! cheap `Arc` clones) to isolate a component or to pin a width in
//! benchmarks; `Pool::new(1)` spawns nothing and executes `run` calls
//! inline on the caller and `submit` tasks at join time.
//!
//! Panics propagate: if a batch task panics, the pool finishes the
//! batch, then re-raises the payload of the lowest-indexed panicking
//! task on the caller (deterministic); a panicking submission re-raises
//! at [`Handle::join`]. The pool stays usable after either.
#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A lifetime-erased pointer to a `run` call's shared task closure.
///
/// Only ever dereferenced by a lane that claimed a task index `<
/// n_tasks`; `Pool::run` does not retire the job (and so does not
/// return, keeping the closure alive) until every claimed index has
/// finished.
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-callable from any thread) and
// `Pool::run` guarantees it outlives every dereference (see `TaskRef`).
unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

impl TaskRef {
    /// Erase the closure's lifetime so parked workers can hold it.
    ///
    /// # Safety
    /// The caller must keep the closure alive (and unmoved) until the
    /// job it is published under has been retired.
    unsafe fn erase<'a>(task: &'a (dyn Fn(usize) + Sync + 'a)) -> TaskRef {
        // SAFETY: only the lifetime is transmuted; the vtable and data
        // pointer are unchanged.
        let widened = unsafe {
            std::mem::transmute::<&'a (dyn Fn(usize) + Sync + 'a), &'static (dyn Fn(usize) + Sync)>(
                task,
            )
        };
        TaskRef(widened)
    }
}

/// One published batch of tasks. Lanes (workers and any helping caller)
/// claim indices from `next`; `pending` counts unfinished tasks.
struct Job {
    task: TaskRef,
    n_tasks: usize,
    next: AtomicUsize,
    pending: AtomicUsize,
}

/// One unit of queued work.
enum WorkItem {
    /// A submitted one-shot task (already wrapped: it stores its own
    /// result and signals its handle's joiner).
    Once(Box<dyn FnOnce() + Send>),
    /// A claimable indexed batch from [`Pool::run`]. Stays at the queue
    /// front until every index has been claimed, so any number of lanes
    /// work it concurrently.
    Batch(Arc<Job>),
}

/// State guarded by the pool mutex: the shared FIFO work queue.
struct QueueState {
    queue: VecDeque<WorkItem>,
    /// Set on drop; workers exit.
    shutdown: bool,
}

/// Pop the next executable unit of work, discarding exhausted batches.
/// A non-exhausted batch is *cloned out* but left at the front so other
/// lanes keep claiming from it.
fn next_item(st: &mut QueueState) -> Option<WorkItem> {
    loop {
        match st.queue.front() {
            None => return None,
            Some(WorkItem::Once(_)) => return st.queue.pop_front(),
            Some(WorkItem::Batch(job)) => {
                if job.next.load(Ordering::Relaxed) >= job.n_tasks {
                    // Fully claimed: stragglers are someone else's
                    // `pending` wait, not claimable work.
                    st.queue.pop_front();
                    continue;
                }
                return Some(WorkItem::Batch(Arc::clone(job)));
            }
        }
    }
}

struct Shared {
    state: Mutex<QueueState>,
    /// Workers park here between work items.
    work: Condvar,
    /// Batch callers and handle joiners park here; notified on every
    /// batch retirement, submission completion, and new enqueue (so a
    /// parked helper can pick the new work up).
    done: Condvar,
}

impl Shared {
    /// Execute one unit of work (outside the lock). Never unwinds: both
    /// batch runners and submission wrappers catch their own panics.
    fn execute(&self, item: WorkItem) {
        match item {
            WorkItem::Once(f) => f(),
            WorkItem::Batch(job) => self.run_batch_tasks(&job),
        }
    }

    /// Claim and run `job` indices until the batch is exhausted; the
    /// lane that finishes the last task wakes the batch's caller.
    fn run_batch_tasks(&self, job: &Job) {
        loop {
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.n_tasks {
                break;
            }
            // SAFETY: i < n_tasks, so the job is not yet retired and the
            // caller is keeping the closure alive (see `Pool::run`).
            unsafe { (*job.task.0)(i) };
            if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task of the batch: wake the caller. Taking the
                // lock orders the notify after the caller's wait.
                let _st = self.state.lock().unwrap();
                self.done.notify_all();
            }
        }
    }

    /// Push a work item and wake everyone who could run it.
    fn enqueue(&self, item: WorkItem) {
        let mut st = self.state.lock().unwrap();
        st.queue.push_back(item);
        self.work.notify_all();
        self.done.notify_all();
    }
}

/// A boxed one-shot task for [`Pool::run_each`]: may borrow from the
/// caller's stack (`'a`), runs exactly once on some pool lane.
pub type Task<'a, R> = Box<dyn FnOnce() -> R + Send + 'a>;

/// Dispatch counters (monotonic since pool creation), via [`Pool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// One-shot tasks handed to the queue by [`Pool::submit`].
    pub tasks_submitted: u64,
    /// Indexed batches dispatched to the queue by [`Pool::run`].
    pub batches_run: u64,
    /// Total task indices across those batches.
    pub batch_tasks: u64,
    /// `run` calls served inline **by design**: width-1 pools and
    /// single-task batches, where queue dispatch could only add cost.
    pub inline_runs: u64,
    /// `run` calls (more than one task, width above one) that executed
    /// inline-serial because the pool could not be shared. The queue
    /// architecture has no such path — this counter exists so the
    /// concurrent-driver tests can pin it at zero, and so any future
    /// reintroduction of a serializing fast path has to show up here.
    pub inline_serial_fallbacks: u64,
}

/// Monotonic dispatch counters (see [`PoolStats`]).
#[derive(Default)]
struct StatCounters {
    submitted: AtomicU64,
    batches: AtomicU64,
    batch_tasks: AtomicU64,
    inline_runs: AtomicU64,
    inline_fallbacks: AtomicU64,
}

struct Inner {
    width: usize,
    shared: Arc<Shared>,
    stats: StatCounters,
    handles: Vec<JoinHandle<()>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A persistent, deterministic worker pool (see the [module docs](self)).
///
/// Cloning a `Pool` clones a cheap handle to the same workers; the
/// threads are joined when the last handle drops.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("width", &self.inner.width)
            .finish_non_exhaustive()
    }
}

/// A submitted task's result slot, shared between the queue's wrapper
/// closure and the [`Handle`].
struct OnceState<R> {
    result: Mutex<Option<std::thread::Result<R>>>,
}

/// The join handle of one [`Pool::submit`] task.
///
/// Joining **helps**: while its task is queued or running elsewhere,
/// the joiner executes other queued pool work instead of blocking, so
/// joining from inside another pool task cannot deadlock and a width-1
/// pool simply runs the task at join time. Joining handles in a fixed
/// caller-chosen order is the pool's deterministic fan-out/fan-in
/// primitive for heterogeneous top-level tasks.
///
/// Dropping a handle without joining detaches the task: it still runs,
/// its result (or panic payload) is discarded.
#[must_use = "a submitted task's result (and any panic) surfaces at join()"]
pub struct Handle<R> {
    state: Arc<OnceState<R>>,
    shared: Arc<Shared>,
}

impl<R> Handle<R> {
    /// Whether the task has finished (its `join` would not block).
    pub fn is_finished(&self) -> bool {
        self.state.result.lock().unwrap().is_some()
    }

    /// Wait for the task, executing other queued pool work while it is
    /// not done, and return its result. If the task panicked, the
    /// payload is re-raised here.
    pub fn join(self) -> R {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            // Check under the queue lock: completions notify `done`
            // while holding it, so a result set between this check and
            // a wait cannot be missed.
            if let Some(res) = self.state.result.lock().unwrap().take() {
                drop(st);
                return match res {
                    Ok(r) => r,
                    Err(payload) => resume_unwind(payload),
                };
            }
            match next_item(&mut st) {
                Some(item) => {
                    drop(st);
                    self.shared.execute(item);
                    st = self.shared.state.lock().unwrap();
                }
                None => st = self.shared.done.wait(st).unwrap(),
            }
        }
    }
}

impl Pool {
    /// Pool with `width` execution lanes: the calling thread plus
    /// `width - 1` parked worker threads. `Pool::new(1)` spawns nothing
    /// and runs every task inline. `width == 0` is clamped to 1.
    pub fn new(width: usize) -> Pool {
        let width = width.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(width.saturating_sub(1));
        for k in 1..width {
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("mirabel-exec-{k}"))
                .spawn(move || worker_loop(&shared));
            match spawned {
                Ok(h) => handles.push(h),
                // Degrade gracefully: fewer lanes, identical results —
                // the caller participates, so the pool still makes
                // progress even with zero workers.
                Err(_) => break,
            }
        }
        Pool {
            inner: Arc::new(Inner {
                width,
                shared,
                stats: StatCounters::default(),
                handles,
            }),
        }
    }

    /// The process-wide default pool, created on first use and sized to
    /// [`std::thread::available_parallelism`]. Every component defaults
    /// to this handle, so one set of worker threads serves the whole
    /// hierarchy.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            Pool::new(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
        })
    }

    /// Total execution lanes (the calling thread counts as one). Callers
    /// use this to size work partitions; output must never depend on it.
    pub fn width(&self) -> usize {
        self.inner.width
    }

    /// Snapshot of the dispatch counters. The interesting invariant:
    /// [`PoolStats::inline_serial_fallbacks`] stays zero — concurrent
    /// and nested `run`s share the queue instead of degrading.
    pub fn stats(&self) -> PoolStats {
        let s = &self.inner.stats;
        PoolStats {
            tasks_submitted: s.submitted.load(Ordering::Relaxed),
            batches_run: s.batches.load(Ordering::Relaxed),
            batch_tasks: s.batch_tasks.load(Ordering::Relaxed),
            inline_runs: s.inline_runs.load(Ordering::Relaxed),
            inline_serial_fallbacks: s.inline_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Submit one independent task; every pool lane is a candidate to
    /// run it. Returns a [`Handle`] whose `join` yields the result.
    ///
    /// Submissions queue FIFO behind earlier work, and joiners help
    /// drain the queue, so any interleaving of `submit`/`run`/`join`
    /// across threads makes progress. `'static` bounds because the task
    /// may outlive the submitting stack frame until joined; for borrowed
    /// fan-out use [`Pool::run`] or [`Pool::run_each`].
    pub fn submit<R, F>(&self, f: F) -> Handle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        self.inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(OnceState {
            result: Mutex::new(None),
        });
        let slot = Arc::clone(&state);
        let shared = Arc::clone(&self.inner.shared);
        let signal = Arc::clone(&shared);
        let task: Box<dyn FnOnce() + Send> = Box::new(move || {
            let res = catch_unwind(AssertUnwindSafe(f));
            *slot.result.lock().unwrap() = Some(res);
            // Wake the joiner; taking the queue lock orders the notify
            // after its result check.
            let _st = signal.state.lock().unwrap();
            signal.done.notify_all();
        });
        self.inner.shared.enqueue(WorkItem::Once(task));
        Handle { state, shared }
    }

    /// Execute `f(0) .. f(n_tasks - 1)` across the pool's lanes and
    /// return the results **in task-index order** — bit-identical to
    /// `(0..n_tasks).map(f).collect()` for any pool width, provided each
    /// task is a pure function of its index.
    ///
    /// The calling thread claims tasks alongside the workers, and while
    /// waiting for its own stragglers it helps execute *other* queued
    /// work — so concurrent `run`s from different threads and `run`s
    /// nested inside pool tasks all share the same lanes, with no
    /// serialization and no deadlock. A width-1 pool (or a single task)
    /// degenerates to an inline serial loop with no synchronization.
    ///
    /// If one or more tasks panic, the batch still runs to completion
    /// and the payload of the lowest-indexed panicking task is re-raised
    /// here; the pool remains usable afterwards.
    pub fn run<R, F>(&self, n_tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n_tasks == 0 {
            return Vec::new();
        }
        // Inline by design (not a fallback): nothing to parallelize.
        if self.inner.width == 1 || n_tasks == 1 {
            self.inner.stats.inline_runs.fetch_add(1, Ordering::Relaxed);
            return (0..n_tasks).map(f).collect();
        }
        self.inner.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .batch_tasks
            .fetch_add(n_tasks as u64, Ordering::Relaxed);

        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_tasks));
        let first_panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
        let runner = |i: usize| match catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(r) => results.lock().unwrap().push((i, r)),
            Err(payload) => {
                let mut slot = first_panic.lock().unwrap();
                if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                    *slot = Some((i, payload));
                }
            }
        };

        // SAFETY: `runner` (and everything it borrows) outlives the job:
        // `run` only returns after observing `pending == 0`, i.e. after
        // every claimed task index has finished, and lanes never
        // dereference the task pointer for indices >= n_tasks (`next`
        // only grows, so every claim after exhaustion is out of range).
        let task = unsafe { TaskRef::erase(&runner) };
        let job = Arc::new(Job {
            task,
            n_tasks,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(n_tasks),
        });
        let shared = &self.inner.shared;
        shared.enqueue(WorkItem::Batch(Arc::clone(&job)));

        // The caller is a lane too: claim from its own batch first.
        shared.run_batch_tasks(&job);

        // Wait for the workers' stragglers — helping with any *other*
        // queued work meanwhile, so a concurrent caller's batch is not
        // starved by this one parking.
        let mut st = shared.state.lock().unwrap();
        while job.pending.load(Ordering::Acquire) != 0 {
            match next_item(&mut st) {
                Some(item) => {
                    drop(st);
                    shared.execute(item);
                    st = shared.state.lock().unwrap();
                }
                None => st = shared.done.wait(st).unwrap(),
            }
        }
        // Retire the job: drop any queue entry still holding it so the
        // erased task pointer cannot outlive this frame via the queue.
        st.queue
            .retain(|w| !matches!(w, WorkItem::Batch(j) if Arc::ptr_eq(j, &job)));
        drop(st);

        if let Some((_, payload)) = first_panic.into_inner().unwrap() {
            resume_unwind(payload);
        }
        let mut out = results.into_inner().unwrap();
        debug_assert_eq!(out.len(), n_tasks);
        out.sort_unstable_by_key(|&(i, _)| i);
        out.into_iter().map(|(_, r)| r).collect()
    }

    /// Run a vector of **distinct** one-shot tasks and return their
    /// results in input order — the borrowed (scoped) sibling of
    /// [`Pool::submit`] for heterogeneous fan-out like "drive every
    /// node of this hierarchy level once".
    ///
    /// Each task runs exactly once on some lane; results are joined in
    /// task order, so output is bit-identical for any pool width. Unlike
    /// `submit`, tasks may borrow from the caller's stack (they are
    /// kept alive until every task has finished, via [`Pool::run`]).
    pub fn run_each<'a, R>(&self, tasks: Vec<Task<'a, R>>) -> Vec<R>
    where
        R: Send,
    {
        let slots: Vec<Mutex<Option<Task<'a, R>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.run(slots.len(), |i| {
            let task = slots[i]
                .lock()
                .unwrap()
                .take()
                .expect("each task index is claimed exactly once");
            task()
        })
    }
}

/// Body of a parked worker thread: wait for queued work, execute one
/// item (for batches: claim indices until exhausted), park again.
fn worker_loop(shared: &Shared) {
    loop {
        let item = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(item) = next_item(&mut st) {
                    break item;
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        shared.execute(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_arrive_in_task_index_order() {
        let pool = Pool::new(4);
        let out = pool.run(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn identical_to_serial_for_any_width() {
        let reference: Vec<u64> = (0..33).map(|i| i as u64 * 7 + 1).collect();
        for width in [1, 2, 3, 8] {
            let pool = Pool::new(width);
            assert_eq!(pool.run(33, |i| i as u64 * 7 + 1), reference);
        }
    }

    #[test]
    fn pool_is_reused_across_calls() {
        // Many batches on one pool: every batch completes and no state
        // leaks between them (a stale claim counter or queue entry would
        // hang or misindex immediately).
        let pool = Pool::new(3);
        let hits = AtomicU64::new(0);
        for round in 0..100u64 {
            let out = pool.run(5, |i| {
                hits.fetch_add(1, Ordering::Relaxed);
                round * 10 + i as u64
            });
            assert_eq!(out, (0..5).map(|i| round * 10 + i).collect::<Vec<_>>());
        }
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn propagates_the_lowest_indexed_panic() {
        let pool = Pool::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i % 2 == 1 {
                    panic!("task {i} failed");
                }
                i
            })
        }))
        .expect_err("the batch must panic");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic! with format produces a String");
        assert_eq!(msg, "task 1 failed");
        // The pool survives a panicking batch.
        assert_eq!(pool.run(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn nested_run_shares_the_queue() {
        // A run inside a run used to fall back to inline-serial; now the
        // inner batch is queued and claimable by every lane. Results are
        // identical either way — and no fallback is recorded.
        let pool = Pool::new(4);
        let out = pool.run(4, |i| pool.run(3, |j| i * 10 + j));
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (0..3).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
        assert_eq!(pool.stats().inline_serial_fallbacks, 0);
    }

    #[test]
    fn concurrent_runs_share_workers_without_fallback() {
        // Two threads race top-level `run`s on one pool. Before the
        // shared queue, the loser of the run-lock executed inline-serial;
        // now both batches dispatch and both come back index-ordered.
        let pool = Pool::new(4);
        let a = {
            let pool = pool.clone();
            std::thread::spawn(move || pool.run(40, |i| i as u64 * 3))
        };
        let b = pool.run(40, |i| i as u64 * 5);
        let a = a.join().expect("no panic");
        assert_eq!(a, (0..40).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(b, (0..40).map(|i| i * 5).collect::<Vec<_>>());
        let stats = pool.stats();
        assert_eq!(stats.inline_serial_fallbacks, 0);
        assert_eq!(stats.batches_run, 2);
        assert_eq!(stats.batch_tasks, 80);
    }

    #[test]
    fn submit_returns_joinable_handles_in_caller_order() {
        let pool = Pool::new(3);
        let handles: Vec<Handle<u64>> = (0..16u64).map(|i| pool.submit(move || i * i)).collect();
        let out: Vec<u64> = handles.into_iter().map(Handle::join).collect();
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(pool.stats().tasks_submitted, 16);
    }

    #[test]
    fn submit_on_width_one_pool_runs_at_join() {
        // No workers exist; the joiner executes the queued task itself.
        let pool = Pool::new(1);
        let h = pool.submit(|| 41 + 1);
        assert_eq!(h.join(), 42);
    }

    #[test]
    fn submitted_panic_propagates_at_join() {
        let pool = Pool::new(2);
        let h = pool.submit(|| -> usize { panic!("submitted task failed") });
        let caught = catch_unwind(AssertUnwindSafe(move || h.join())).expect_err("join must panic");
        let msg = caught.downcast_ref::<&str>().expect("static panic message");
        assert_eq!(*msg, "submitted task failed");
        // The pool survives.
        assert_eq!(pool.run(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn join_inside_a_pool_task_does_not_deadlock() {
        // A submitted task joins another handle: the joiner helps drain
        // the queue, so this completes at any width — including when all
        // worker lanes are busy with the outer tasks.
        let pool = Pool::new(2);
        let outer: Vec<Handle<u64>> = (0..4u64)
            .map(|i| {
                let pool = pool.clone();
                pool.clone().submit(move || {
                    let inner = pool.submit(move || i + 100);
                    inner.join()
                })
            })
            .collect();
        let out: Vec<u64> = outer.into_iter().map(Handle::join).collect();
        assert_eq!(out, vec![100, 101, 102, 103]);
    }

    #[test]
    fn run_each_runs_fnonce_tasks_in_order() {
        // Heterogeneous borrowed tasks: each runs exactly once, results
        // come back in input order for any width.
        let data: Vec<u64> = (0..8).map(|i| i * 11).collect();
        for width in [1, 2, 4] {
            let pool = Pool::new(width);
            let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = data
                .iter()
                .map(|v| {
                    let v = *v;
                    Box::new(move || v + 1) as Box<dyn FnOnce() -> u64 + Send + '_>
                })
                .collect();
            assert_eq!(
                pool.run_each(tasks),
                data.iter().map(|v| v + 1).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn stats_track_dispatch_modes() {
        let pool = Pool::new(4);
        assert_eq!(pool.stats(), PoolStats::default());
        pool.run(8, |i| i); // queued batch
        pool.run(1, |i| i); // inline by design (single task)
        let h = pool.submit(|| 7); // one-shot
        h.join();
        let s = pool.stats();
        assert_eq!(s.batches_run, 1);
        assert_eq!(s.batch_tasks, 8);
        assert_eq!(s.inline_runs, 1);
        assert_eq!(s.tasks_submitted, 1);
        assert_eq!(s.inline_serial_fallbacks, 0);

        let narrow = Pool::new(1);
        narrow.run(8, |i| i); // width-1: inline by design
        assert_eq!(narrow.stats().inline_runs, 1);
        assert_eq!(narrow.stats().batches_run, 0);
    }

    #[test]
    fn zero_tasks_and_width_clamp() {
        let pool = Pool::new(0);
        assert_eq!(pool.width(), 1);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(1, |i| i), vec![0]);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = Pool::global();
        let b = Pool::global();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        assert!(a.width() >= 1);
        assert_eq!(a.run(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn tasks_borrow_caller_state() {
        // The whole point of the scope-style API: tasks read borrowed
        // slices without copying them into the closure.
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let pool = Pool::new(4);
        let sums = pool.run(4, |w| data[w * 250..(w + 1) * 250].iter().sum::<f64>());
        let total: f64 = sums.iter().sum();
        assert_eq!(total, data.iter().sum::<f64>());
    }
}
