//! The shared deterministic worker pool every parallel path in the
//! workspace runs on (paper §5 calls for partition-parallel model
//! estimation; the same executor also drives shard-parallel aggregate
//! flushes and multi-start scheduling chains).
//!
//! ## Why a persistent pool
//!
//! MIRABEL's node runs forecasting, aggregation and scheduling
//! *continuously*: every trickle flush and every incremental replan used
//! to spawn (and join) a fresh set of `std::thread::scope` workers,
//! paying thread creation latency on the steady-state hot path — often
//! more than the work itself for a few-microsecond trickle fold. A
//! [`Pool`] keeps its workers parked on a condvar between calls, so
//! dispatching a batch of tasks costs a wake-up, not a spawn.
//!
//! ## Why deterministic join order
//!
//! [`Pool::run`] executes `n_tasks` closures `f(0) .. f(n_tasks - 1)`
//! and returns their results **in task-index order**, whatever the
//! worker count or OS scheduling. Callers therefore keep the invariant
//! the whole workspace is built on: *parallelism never changes output*.
//! The aggregate flush merges shard results in sorted sub-group order,
//! best-of-K scheduling chains tie-break on chain index, and EGRV
//! fitting installs coefficients by period index — all of which reduce
//! to "results arrive indexed by task, not by completion time". Work
//! distribution is a single shared claim counter (no work stealing, no
//! per-worker queues): which lane runs a task is scheduling-dependent,
//! but since each task is a pure function of its index, the *result
//! vector* is bit-identical for any width.
//!
//! ## Sizing and sharing
//!
//! [`Pool::global`] is the lazily-created process-wide default, sized to
//! [`std::thread::available_parallelism`]. Components default to it, so
//! an entire `edms` hierarchy — every BRP, the TSO, their pipelines and
//! repair chains — shares one set of worker threads instead of spawning
//! per node per round. Pass an explicit [`Pool::new`] handle (they are
//! cheap `Arc` clones) to isolate a component or to pin a width in
//! benchmarks; `Pool::new(1)` executes inline on the caller and spawns
//! nothing.
//!
//! A `run` that nests inside another `run` on the same pool (or races
//! with one from another thread) falls back to inline serial execution
//! of its own tasks — same results, no deadlock.
//!
//! Panics propagate: if a task panics, the pool finishes the batch,
//! then re-raises the payload of the lowest-indexed panicking task on
//! the caller (again deterministic), leaving the pool reusable.
#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A lifetime-erased pointer to a `run` call's shared task closure.
///
/// Only ever dereferenced by a lane that claimed a task index `<
/// n_tasks`; `Pool::run` does not retire the job (and so does not
/// return, keeping the closure alive) until every claimed index has
/// finished.
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-callable from any thread) and
// `Pool::run` guarantees it outlives every dereference (see `TaskRef`).
unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

impl TaskRef {
    /// Erase the closure's lifetime so parked workers can hold it.
    ///
    /// # Safety
    /// The caller must keep the closure alive (and unmoved) until the
    /// job it is published under has been retired.
    unsafe fn erase<'a>(task: &'a (dyn Fn(usize) + Sync + 'a)) -> TaskRef {
        // SAFETY: only the lifetime is transmuted; the vtable and data
        // pointer are unchanged.
        let widened = unsafe {
            std::mem::transmute::<&'a (dyn Fn(usize) + Sync + 'a), &'static (dyn Fn(usize) + Sync)>(
                task,
            )
        };
        TaskRef(widened)
    }
}

/// One published batch of tasks. Lanes (workers and the calling thread)
/// claim indices from `next`; `pending` counts unfinished tasks.
struct Job {
    task: TaskRef,
    n_tasks: usize,
    next: AtomicUsize,
    pending: AtomicUsize,
}

/// State guarded by the pool mutex.
struct State {
    /// The current job, if one is in flight.
    job: Option<Arc<Job>>,
    /// Job generation counter — workers process each generation once.
    seq: u64,
    /// Set on drop; workers exit.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The caller parks here until `pending` reaches zero.
    done: Condvar,
}

struct Inner {
    width: usize,
    /// Serializes `run` calls; a busy lock means a nested or concurrent
    /// `run`, which executes inline instead (no deadlock, same output).
    run_lock: Mutex<()>,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A persistent, deterministic worker pool (see the [module docs](self)).
///
/// Cloning a `Pool` clones a cheap handle to the same workers; the
/// threads are joined when the last handle drops.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("width", &self.inner.width)
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// Pool with `width` execution lanes: the calling thread plus
    /// `width - 1` parked worker threads. `Pool::new(1)` spawns nothing
    /// and runs every task inline. `width == 0` is clamped to 1.
    pub fn new(width: usize) -> Pool {
        let width = width.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                seq: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(width.saturating_sub(1));
        for k in 1..width {
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("mirabel-exec-{k}"))
                .spawn(move || worker_loop(&shared));
            match spawned {
                Ok(h) => handles.push(h),
                // Degrade gracefully: fewer lanes, identical results —
                // the caller participates, so the pool still makes
                // progress even with zero workers.
                Err(_) => break,
            }
        }
        Pool {
            inner: Arc::new(Inner {
                width,
                run_lock: Mutex::new(()),
                shared,
                handles,
            }),
        }
    }

    /// The process-wide default pool, created on first use and sized to
    /// [`std::thread::available_parallelism`]. Every component defaults
    /// to this handle, so one set of worker threads serves the whole
    /// hierarchy.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            Pool::new(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
        })
    }

    /// Total execution lanes (the calling thread counts as one). Callers
    /// use this to size work partitions; output must never depend on it.
    pub fn width(&self) -> usize {
        self.inner.width
    }

    /// Execute `f(0) .. f(n_tasks - 1)` across the pool's lanes and
    /// return the results **in task-index order** — bit-identical to
    /// `(0..n_tasks).map(f).collect()` for any pool width, provided each
    /// task is a pure function of its index.
    ///
    /// The calling thread claims tasks alongside the workers, so a
    /// width-1 pool (or a single task, or a nested `run`) degenerates to
    /// an inline serial loop with no synchronization at all.
    ///
    /// If one or more tasks panic, the batch still runs to completion
    /// and the payload of the lowest-indexed panicking task is re-raised
    /// here; the pool remains usable afterwards.
    pub fn run<R, F>(&self, n_tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n_tasks == 0 {
            return Vec::new();
        }
        // Inline serial fast path: nothing to parallelize, or the pool
        // is already mid-`run` (nested or concurrent call) — executing
        // on the caller keeps results identical and cannot deadlock.
        let guard = if self.inner.width > 1 && n_tasks > 1 {
            self.inner.run_lock.try_lock().ok()
        } else {
            None
        };
        let Some(_guard) = guard else {
            return (0..n_tasks).map(f).collect();
        };

        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_tasks));
        let first_panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
        let runner = |i: usize| match catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(r) => results.lock().unwrap().push((i, r)),
            Err(payload) => {
                let mut slot = first_panic.lock().unwrap();
                if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                    *slot = Some((i, payload));
                }
            }
        };

        // SAFETY: `runner` (and everything it borrows) outlives the job:
        // `run` only returns after observing `pending == 0`, i.e. after
        // every claimed task index has finished, and lanes never
        // dereference the task pointer for indices >= n_tasks.
        let task = unsafe { TaskRef::erase(&runner) };
        let job = Arc::new(Job {
            task,
            n_tasks,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(n_tasks),
        });
        let shared = &self.inner.shared;
        {
            let mut st = shared.state.lock().unwrap();
            st.job = Some(Arc::clone(&job));
            st.seq = st.seq.wrapping_add(1);
            shared.work.notify_all();
        }

        // The caller is a lane too.
        loop {
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= n_tasks {
                break;
            }
            runner(i);
            job.pending.fetch_sub(1, Ordering::AcqRel);
        }

        // Wait for the workers' share, then retire the job. After this
        // point no lane can dereference `task` again: `next` only grows,
        // so every further claim sees an index >= n_tasks.
        let mut st = shared.state.lock().unwrap();
        while job.pending.load(Ordering::Acquire) != 0 {
            st = shared.done.wait(st).unwrap();
        }
        st.job = None;
        drop(st);

        if let Some((_, payload)) = first_panic.into_inner().unwrap() {
            resume_unwind(payload);
        }
        let mut out = results.into_inner().unwrap();
        debug_assert_eq!(out.len(), n_tasks);
        out.sort_unstable_by_key(|&(i, _)| i);
        out.into_iter().map(|(_, r)| r).collect()
    }
}

/// Body of a parked worker thread: wait for an unseen job generation,
/// claim and run tasks until the batch is exhausted, park again.
fn worker_loop(shared: &Shared) {
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq != last_seq {
                    if let Some(job) = &st.job {
                        last_seq = st.seq;
                        break Arc::clone(job);
                    }
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        loop {
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.n_tasks {
                break;
            }
            // SAFETY: i < n_tasks, so the job is not yet retired and the
            // caller is keeping the closure alive (see `Pool::run`).
            unsafe { (*job.task.0)(i) };
            if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task of the batch: wake the caller. Taking the
                // lock orders the notify after the caller's wait.
                let _st = shared.state.lock().unwrap();
                shared.done.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_arrive_in_task_index_order() {
        let pool = Pool::new(4);
        let out = pool.run(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn identical_to_serial_for_any_width() {
        let reference: Vec<u64> = (0..33).map(|i| i as u64 * 7 + 1).collect();
        for width in [1, 2, 3, 8] {
            let pool = Pool::new(width);
            assert_eq!(pool.run(33, |i| i as u64 * 7 + 1), reference);
        }
    }

    #[test]
    fn pool_is_reused_across_calls() {
        // Many batches on one pool: every batch completes and no state
        // leaks between them (a stale claim counter or job would hang or
        // misindex immediately).
        let pool = Pool::new(3);
        let hits = AtomicU64::new(0);
        for round in 0..100u64 {
            let out = pool.run(5, |i| {
                hits.fetch_add(1, Ordering::Relaxed);
                round * 10 + i as u64
            });
            assert_eq!(out, (0..5).map(|i| round * 10 + i).collect::<Vec<_>>());
        }
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn propagates_the_lowest_indexed_panic() {
        let pool = Pool::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i % 2 == 1 {
                    panic!("task {i} failed");
                }
                i
            })
        }))
        .expect_err("the batch must panic");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic! with format produces a String");
        assert_eq!(msg, "task 1 failed");
        // The pool survives a panicking batch.
        assert_eq!(pool.run(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn nested_run_falls_back_to_inline_serial() {
        let pool = Pool::new(4);
        let out = pool.run(4, |i| pool.run(3, |j| i * 10 + j));
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (0..3).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_tasks_and_width_clamp() {
        let pool = Pool::new(0);
        assert_eq!(pool.width(), 1);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(1, |i| i), vec![0]);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = Pool::global();
        let b = Pool::global();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        assert!(a.width() >= 1);
        assert_eq!(a.run(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn tasks_borrow_caller_state() {
        // The whole point of the scope-style API: tasks read borrowed
        // slices without copying them into the closure.
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let pool = Pool::new(4);
        let sums = pool.run(4, |w| data[w * 250..(w + 1) * 250].iter().sum::<f64>());
        let total: f64 = sums.iter().sum();
        assert_eq!(total, data.iter().sum::<f64>());
    }
}
