//! Error types shared across the domain model.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating domain objects.
#[derive(Debug, Clone, PartialEq)]
pub enum DomainError {
    /// A floating-point field was NaN.
    NotANumber(&'static str),
    /// An interval had `min > max`.
    InvertedRange {
        /// Offending lower bound.
        min: f64,
        /// Offending upper bound.
        max: f64,
    },
    /// A flex-offer failed structural validation.
    InvalidFlexOffer(String),
    /// A schedule violated the constraints of its flex-offer.
    InvalidSchedule(String),
    /// A profile was empty or structurally broken.
    InvalidProfile(String),
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::NotANumber(what) => write!(f, "{what} must not be NaN"),
            DomainError::InvertedRange { min, max } => {
                write!(f, "inverted range: min {min} > max {max}")
            }
            DomainError::InvalidFlexOffer(msg) => write!(f, "invalid flex-offer: {msg}"),
            DomainError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
            DomainError::InvalidProfile(msg) => write!(f, "invalid profile: {msg}"),
        }
    }
}

impl Error for DomainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DomainError::NotANumber("energy").to_string(),
            "energy must not be NaN"
        );
        assert!(DomainError::InvertedRange { min: 2.0, max: 1.0 }
            .to_string()
            .contains("inverted"));
        assert!(DomainError::InvalidFlexOffer("x".into())
            .to_string()
            .contains("flex-offer"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&DomainError::NotANumber("x"));
    }
}
