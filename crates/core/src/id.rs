//! Strongly-typed identifiers.
//!
//! Every entity class gets its own id newtype so that a flex-offer id can
//! never be confused with, say, a node id at a call site.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Raw numeric value.
            #[inline]
            pub fn value(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// Identifier of a flex-offer (micro or scheduled).
    FlexOfferId,
    "fo"
);
define_id!(
    /// Identifier of a market actor (prosumer, BRP, TSO).
    ActorId,
    "actor"
);
define_id!(
    /// Identifier of an EDMS node.
    NodeId,
    "node"
);
define_id!(
    /// Identifier of a similarity group inside the group-builder.
    GroupId,
    "grp"
);
define_id!(
    /// Identifier of an aggregated (macro) flex-offer.
    AggregateId,
    "agg"
);
define_id!(
    /// Identifier of a federation region (one national TSO hierarchy).
    ///
    /// Region ids are pure metadata: they ride envelopes and WAL event
    /// records (tenant-registry style) for isolation, recovery and chaos
    /// targeting, but never influence planning or RNG behaviour inside a
    /// region — a region run solo is bit-identical to the same region run
    /// inside a federation.
    RegionId,
    "region"
);

impl RegionId {
    /// The implicit region of every pre-federation deployment; legacy
    /// wire frames and WAL records decode into this region.
    pub const DEFAULT: RegionId = RegionId(0);
}

impl Default for RegionId {
    fn default() -> Self {
        RegionId::DEFAULT
    }
}

/// Monotonically increasing id source, safe to share across threads.
#[derive(Debug, Default)]
pub struct IdSource {
    next: AtomicU64,
}

impl IdSource {
    /// Create a source starting at `first`.
    pub fn starting_at(first: u64) -> IdSource {
        IdSource {
            next: AtomicU64::new(first),
        }
    }

    /// Allocate the next raw id.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate a typed flex-offer id.
    pub fn next_flex_offer(&self) -> FlexOfferId {
        FlexOfferId(self.next())
    }

    /// Allocate a typed aggregate id.
    pub fn next_aggregate(&self) -> AggregateId {
        AggregateId(self.next())
    }

    /// Allocate a typed group id.
    pub fn next_group(&self) -> GroupId {
        GroupId(self.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(FlexOfferId(7).to_string(), "fo7");
        assert_eq!(ActorId(1).to_string(), "actor1");
        assert_eq!(NodeId(2).to_string(), "node2");
        assert_eq!(GroupId(3).to_string(), "grp3");
        assert_eq!(AggregateId(4).to_string(), "agg4");
        assert_eq!(RegionId(5).to_string(), "region5");
    }

    #[test]
    fn region_default_is_zero() {
        assert_eq!(RegionId::default(), RegionId::DEFAULT);
        assert_eq!(RegionId::DEFAULT.value(), 0);
    }

    #[test]
    fn id_source_monotonic() {
        let s = IdSource::default();
        let a = s.next_flex_offer();
        let b = s.next_flex_offer();
        assert!(b.value() > a.value());
    }

    #[test]
    fn id_source_threaded_uniqueness() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let s = Arc::new(IdSource::default());
        let mut handles = vec![];
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| s.next()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(seen.len(), 4000);
    }
}
