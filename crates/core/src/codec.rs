//! Compact hand-rolled binary wire codec.
//!
//! The vendored `serde` is a no-op stub, so nothing in the workspace
//! could actually serialize until now. This module supplies the real
//! format: a varint-based little-endian encoding with a [`Wire`] trait
//! implemented by every type that crosses a node boundary or is written
//! to a write-ahead log (`FlexOffer`, `Profile`, `ScheduledFlexOffer`,
//! and — in the layers above — `FlexOfferUpdate`, `Message`,
//! `Envelope`, WAL event records and node snapshots).
//!
//! Design rules:
//!
//! * **Unsigned integers** are LEB128 varints (7 payload bits per byte,
//!   continuation high bit), so ids and short lengths cost one byte.
//! * **Signed integers** are zigzag-folded (`0, -1, 1, -2, …`) before
//!   varint encoding, so small negative slots stay small on the wire.
//! * **Floats** are raw IEEE-754 bits in 8 fixed little-endian bytes —
//!   bit-exact roundtrips, including `-0.0` and infinities, are a hard
//!   requirement for the replay-determinism guarantees of the WAL.
//! * **Decoding validates**: domain types decode through their checked
//!   constructors ([`FlexOffer`] through its builder, [`EnergyRange`]
//!   through [`EnergyRange::new`], …), so a corrupt or adversarial byte
//!   stream yields a [`CodecError`], never an invariant-violating value.

use crate::energy::{Energy, EnergyRange};
use crate::error::DomainError;
use crate::flexoffer::{FlexOffer, OfferKind};
use crate::id::{ActorId, AggregateId, FlexOfferId, GroupId, NodeId, RegionId};
use crate::price::Price;
use crate::profile::{Profile, Slice};
use crate::schedule::ScheduledFlexOffer;
use crate::time::TimeSlot;
use std::fmt;

/// Errors produced while decoding a wire buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The buffer ended mid-value.
    UnexpectedEof,
    /// A varint ran past 10 bytes (would overflow `u64`).
    VarintOverflow,
    /// An enum tag byte had no corresponding variant.
    InvalidTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// The decoded value failed domain validation.
    Domain(DomainError),
    /// Trailing bytes remained after a whole-buffer decode.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "buffer ended mid-value"),
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            CodecError::Domain(e) => write!(f, "decoded value failed validation: {e}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<DomainError> for CodecError {
    fn from(e: DomainError) -> CodecError {
        CodecError::Domain(e)
    }
}

/// Append a `u64` as a LEB128 varint.
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint `u64`, advancing `buf`.
pub fn take_u64(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    for shift in 0..10 {
        let (&byte, rest) = buf.split_first().ok_or(CodecError::UnexpectedEof)?;
        *buf = rest;
        v |= u64::from(byte & 0x7f) << (7 * shift);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(CodecError::VarintOverflow)
}

/// Append an `i64` zigzag-folded then varint-encoded.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Read a zigzag varint `i64`, advancing `buf`.
pub fn take_i64(buf: &mut &[u8]) -> Result<i64, CodecError> {
    let z = take_u64(buf)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

/// Append an `f64` as its 8 raw IEEE-754 bits, little-endian.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Read 8 fixed bytes back into an `f64` (bit-exact), advancing `buf`.
pub fn take_f64(buf: &mut &[u8]) -> Result<f64, CodecError> {
    if buf.len() < 8 {
        return Err(CodecError::UnexpectedEof);
    }
    let (bytes, rest) = buf.split_at(8);
    *buf = rest;
    Ok(f64::from_bits(u64::from_le_bytes(
        bytes.try_into().expect("split at 8"),
    )))
}

/// Binary wire encoding: append-to-buffer encode and validating decode.
///
/// Every implementation guarantees `decode(encode(x)) == x` (bit-exact
/// for floats) and rejects malformed input with a [`CodecError`] rather
/// than constructing an invalid value.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode a value that must occupy the *whole* buffer.
    fn from_bytes(mut buf: &[u8]) -> Result<Self, CodecError> {
        let v = Self::decode(&mut buf)?;
        if buf.is_empty() {
            Ok(v)
        } else {
            Err(CodecError::TrailingBytes(buf.len()))
        }
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        take_u64(buf)
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, u64::from(*self));
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        u32::try_from(take_u64(buf)?).map_err(|_| CodecError::InvalidTag {
            what: "u32",
            tag: u64::MAX,
        })
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self as u64);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        usize::try_from(take_u64(buf)?).map_err(|_| CodecError::VarintOverflow)
    }
}

impl Wire for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_i64(out, *self);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        take_i64(buf)
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, *self);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        take_f64(buf)
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let (&byte, rest) = buf.split_first().ok_or(CodecError::UnexpectedEof)?;
        *buf = rest;
        match byte {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::InvalidTag {
                what: "bool",
                tag: u64::from(other),
            }),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = buf.split_first().ok_or(CodecError::UnexpectedEof)?;
        *buf = rest;
        match tag {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            other => Err(CodecError::InvalidTag {
                what: "Option",
                tag: u64::from(other),
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.len() as u64);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(buf)?;
        // Guard against adversarial length prefixes: never pre-allocate
        // more elements than the remaining buffer could possibly hold
        // (every element costs at least one byte).
        let mut out = Vec::with_capacity(len.min(buf.len()));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

macro_rules! wire_id {
    ($($ty:ident),+) => {$(
        impl Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                put_u64(out, self.0);
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
                Ok($ty(take_u64(buf)?))
            }
        }
    )+};
}

wire_id!(ActorId, AggregateId, FlexOfferId, GroupId, NodeId, RegionId);

impl Wire for TimeSlot {
    fn encode(&self, out: &mut Vec<u8>) {
        put_i64(out, self.0);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(TimeSlot(take_i64(buf)?))
    }
}

impl Wire for Price {
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.0);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Price(take_f64(buf)?))
    }
}

impl Wire for Energy {
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.kwh());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Energy::kwh_checked(take_f64(buf)?)?)
    }
}

impl Wire for EnergyRange {
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.min().kwh());
        put_f64(out, self.max().kwh());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let min = take_f64(buf)?;
        let max = take_f64(buf)?;
        Ok(EnergyRange::new(min, max)?)
    }
}

impl Wire for OfferKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            OfferKind::Consumption => 0,
            OfferKind::Production => 1,
        });
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = buf.split_first().ok_or(CodecError::UnexpectedEof)?;
        *buf = rest;
        match tag {
            0 => Ok(OfferKind::Consumption),
            1 => Ok(OfferKind::Production),
            other => Err(CodecError::InvalidTag {
                what: "OfferKind",
                tag: u64::from(other),
            }),
        }
    }
}

impl Wire for Slice {
    fn encode(&self, out: &mut Vec<u8>) {
        self.duration.encode(out);
        self.energy.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let duration = u32::decode(buf)?;
        let energy = EnergyRange::decode(buf)?;
        Ok(Slice::new(duration, energy)?)
    }
}

impl Wire for Profile {
    fn encode(&self, out: &mut Vec<u8>) {
        self.slices().to_vec().encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Profile::new(Vec::<Slice>::decode(buf)?)?)
    }
}

impl Wire for FlexOffer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id().encode(out);
        self.owner().encode(out);
        self.kind().encode(out);
        self.assignment_before().encode(out);
        self.earliest_start().encode(out);
        self.latest_start().encode(out);
        self.profile().encode(out);
        self.total_energy().encode(out);
        self.unit_price().encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let id = FlexOfferId::decode(buf)?;
        let owner = ActorId::decode(buf)?;
        let kind = OfferKind::decode(buf)?;
        let assignment_before = TimeSlot::decode(buf)?;
        let earliest_start = TimeSlot::decode(buf)?;
        let latest_start = TimeSlot::decode(buf)?;
        let profile = Profile::decode(buf)?;
        let total_energy = Option::<EnergyRange>::decode(buf)?;
        let unit_price = Price::decode(buf)?;
        // Route through the validating builder so decoded offers uphold
        // the same invariants as constructed ones.
        let mut b = FlexOffer::builder(id.value(), owner.value())
            .kind(kind)
            .earliest_start(earliest_start)
            .latest_start(latest_start)
            .assignment_before(assignment_before)
            .profile(profile)
            .unit_price(unit_price);
        if let Some(te) = total_energy {
            b = b.total_energy(te);
        }
        Ok(b.build()?)
    }
}

impl Wire for ScheduledFlexOffer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.offer_id.encode(out);
        self.start.encode(out);
        self.slot_energies.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(ScheduledFlexOffer {
            offer_id: FlexOfferId::decode(buf)?,
            start: TimeSlot::decode(buf)?,
            slot_energies: Vec::<Energy>::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decodes");
        assert_eq!(&back, v);
    }

    #[test]
    fn varint_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            roundtrip(&v);
        }
        let mut out = Vec::new();
        put_u64(&mut out, 127);
        assert_eq!(out.len(), 1);
        out.clear();
        put_u64(&mut out, 128);
        assert_eq!(out.len(), 2);
        out.clear();
        put_u64(&mut out, u64::MAX);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn zigzag_keeps_small_negatives_small() {
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            roundtrip(&v);
        }
        let mut out = Vec::new();
        put_i64(&mut out, -1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn float_bits_exact() {
        for v in [
            0.0f64,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
        ] {
            let bytes = v.to_bytes();
            let back = f64::from_bytes(&bytes).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_inputs_error() {
        let offer = sample_offer(42);
        let bytes = offer.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                FlexOffer::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        assert!(matches!(
            u64::from_bytes(&[0x00, 0x00]),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn nan_energy_rejected_on_decode() {
        let mut bytes = Vec::new();
        put_f64(&mut bytes, f64::NAN);
        assert!(matches!(
            Energy::from_bytes(&bytes),
            Err(CodecError::Domain(_))
        ));
    }

    #[test]
    fn invalid_tags_rejected() {
        assert!(matches!(
            OfferKind::from_bytes(&[7]),
            Err(CodecError::InvalidTag { .. })
        ));
        assert!(matches!(
            bool::from_bytes(&[2]),
            Err(CodecError::InvalidTag { .. })
        ));
        assert!(matches!(
            Option::<u64>::from_bytes(&[9]),
            Err(CodecError::InvalidTag { .. })
        ));
    }

    #[test]
    fn adversarial_length_prefix_does_not_allocate() {
        // Claims 2^60 elements but carries none: must error, not OOM.
        let mut bytes = Vec::new();
        put_u64(&mut bytes, 1u64 << 60);
        assert!(Vec::<u64>::from_bytes(&bytes).is_err());
    }

    fn sample_offer(id: u64) -> FlexOffer {
        FlexOffer::builder(id, 7)
            .kind(OfferKind::Production)
            .earliest_start(TimeSlot(96))
            .latest_start(TimeSlot(120))
            .assignment_before(TimeSlot(90))
            .profile(
                Profile::new(vec![
                    Slice::new(2, EnergyRange::new(1.0, 2.5).unwrap()).unwrap(),
                    Slice::new(3, EnergyRange::new(-1.0, 4.0).unwrap()).unwrap(),
                ])
                .unwrap(),
            )
            .total_energy(EnergyRange::new(2.0, 15.0).unwrap())
            .unit_price(Price(0.07))
            .build()
            .unwrap()
    }

    #[test]
    fn flex_offer_roundtrip() {
        roundtrip(&sample_offer(9));
    }

    #[test]
    fn scheduled_offer_roundtrip() {
        let o = sample_offer(3);
        roundtrip(&ScheduledFlexOffer::at_fraction(&o, TimeSlot(100), 0.37));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn prop_u64_roundtrip(v in any::<u64>()) {
            let mut out = Vec::new();
            put_u64(&mut out, v);
            let mut buf = out.as_slice();
            prop_assert_eq!(take_u64(&mut buf).unwrap(), v);
            prop_assert!(buf.is_empty());
        }

        #[test]
        fn prop_i64_roundtrip(v in any::<i64>()) {
            let mut out = Vec::new();
            put_i64(&mut out, v);
            let mut buf = out.as_slice();
            prop_assert_eq!(take_i64(&mut buf).unwrap(), v);
            prop_assert!(buf.is_empty());
        }

        #[test]
        fn prop_f64_bits_roundtrip(bits in any::<u64>()) {
            let v = f64::from_bits(bits);
            let mut out = Vec::new();
            put_f64(&mut out, v);
            let mut buf = out.as_slice();
            prop_assert_eq!(take_f64(&mut buf).unwrap().to_bits(), bits);
        }

        #[test]
        fn prop_flex_offer_roundtrip(
            id in any::<u64>(),
            owner in any::<u64>(),
            production in any::<bool>(),
            es in -1_000i64..1_000,
            tf in 0u32..64,
            lead in 0u32..32,
            slices in proptest::collection::vec(
                (1u32..5, -10.0f64..10.0, 0.0f64..10.0),
                1..6
            ),
            price in -1.0f64..1.0,
        ) {
            let profile = Profile::new(
                slices
                    .into_iter()
                    .map(|(d, lo, width)| {
                        Slice::new(d, EnergyRange::new(lo, lo + width).unwrap()).unwrap()
                    })
                    .collect(),
            )
            .unwrap();
            let offer = FlexOffer::builder(id, owner)
                .kind(if production { OfferKind::Production } else { OfferKind::Consumption })
                .earliest_start(TimeSlot(es))
                .latest_start(TimeSlot(es + tf as i64))
                .assignment_before(TimeSlot(es - lead as i64))
                .profile(profile)
                .unit_price(Price(price))
                .build()
                .unwrap();
            let back = FlexOffer::from_bytes(&offer.to_bytes()).unwrap();
            prop_assert_eq!(back, offer);
        }

        #[test]
        fn prop_scheduled_offer_roundtrip(
            id in any::<u64>(),
            start in -500i64..500,
            energies in proptest::collection::vec(-100.0f64..100.0, 0..12),
        ) {
            let s = ScheduledFlexOffer {
                offer_id: FlexOfferId(id),
                start: TimeSlot(start),
                slot_energies: energies.into_iter().map(Energy::from_kwh).collect(),
            };
            let back = ScheduledFlexOffer::from_bytes(&s.to_bytes()).unwrap();
            prop_assert_eq!(back, s);
        }
    }
}
