//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and
//! macro namespaces so `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No actual
//! serialization is performed anywhere in the workspace; replacing this
//! stub with real serde is a one-line Cargo.toml change.

pub use serde_derive::{Deserialize, Serialize};
