//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace uses: the `proptest!` macro over
//! functions whose arguments are drawn from range strategies or
//! `proptest::collection::vec`, plus `prop_assert!` / `prop_assert_eq!`.
//! Cases are generated from a fixed-seed splitmix64 stream, so failures
//! are reproducible; there is no shrinking — the failing inputs are
//! printed instead. Case count defaults to 64 and can be overridden with
//! the `PROPTEST_CASES` environment variable.

use std::ops::{Range, RangeInclusive};

/// Number of cases each `proptest!` test runs (env-overridable).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: cases() }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// Effective case count: the `PROPTEST_CASES` env var wins over the
    /// configured value so CI can dial effort globally.
    pub fn resolve(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Deterministic splitmix64 stream used to generate cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor (the `proptest!` macro derives the seed from the
    /// test name so distinct tests explore distinct streams).
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values (vastly simplified `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: std::fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: std::fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// `any::<T>()` — full-range strategy for simple types.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: std::fmt::Debug {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// See [`any`].
#[derive(Debug, Clone)]
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A fixed vector of strategies generates element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / a)
    (A / a, B / b)
    (A / a, B / b, C / c)
    (A / a, B / b, C / c, D / d)
    (A / a, B / b, C / c, D / d, E / e)
    (A / a, B / b, C / c, D / d, E / e, F / f)
    (A / a, B / b, C / c, D / d, E / e, F / f, G / g)
    (A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h)
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % width;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % width) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The commonly-imported surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

/// Skip the current case when `cond` is false (no retry — the case simply
/// counts as passed, unlike real proptest's rejection bookkeeping).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Assert inside a `proptest!` body; failure aborts only the current case
/// with a message (mirrors proptest's early-return semantics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)*)
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed at {}:{}: {:?} != {:?}",
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
}

/// Define property tests: each function runs a configurable number of
/// deterministic random cases, its arguments drawn from the given
/// strategies. An optional leading `#![proptest_config(expr)]` sets the
/// case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::__proptest_impl! { ($cfg);
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)* }
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default());
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_cases = $crate::ProptestConfig::resolve(&$cfg);
                // Per-test seed: hash of the test name keeps streams distinct.
                let mut __pt_seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    __pt_seed = (__pt_seed ^ b as u64).wrapping_mul(0x1_0000_01b3);
                }
                let mut __pt_rng = $crate::TestRng::new(__pt_seed);
                for __pt_case in 0..__pt_cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __pt_rng);)*
                    // Render inputs up front: the body may move them.
                    let __pt_inputs = format!("{:?}", ($(&$arg,)*));
                    let __pt_result: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = __pt_result {
                        panic!(
                            "proptest case {} of {} failed: {}\ninputs: {}",
                            __pt_case,
                            stringify!($name),
                            e,
                            __pt_inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -50i64..50, f in 0.0f64..1.0) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn fixed_len_vec(v in crate::collection::vec(0.0f64..1.0, 6)) {
            prop_assert_eq!(v.len(), 6);
        }
    }
}
