//! Offline stand-in for `criterion`.
//!
//! Implements the group/bench_with_input/iter API surface the bench
//! suite uses, with a simple measurement loop: a short warm-up, then
//! `sample_size` timed samples, reporting the median per-iteration time.
//! No statistical analysis, plots, or saved baselines — the numbers land
//! on stdout so the bench trajectory can be recorded from CI logs.

use std::fmt::Display;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Smoke-test mode (`cargo bench -- --test`): run every benchmark body
/// once to prove it still works, skipping the timed measurement loop.
/// Mirrors real criterion's `--test` flag; enabled by `criterion_main!`
/// when the flag is present on the command line.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// Enable or disable smoke-test mode (used by `criterion_main!`).
pub fn set_test_mode(enabled: bool) {
    TEST_MODE.store(enabled, Ordering::Relaxed);
}

fn test_mode() -> bool {
    TEST_MODE.load(Ordering::Relaxed)
}

/// Benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Throughput annotation (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration nanoseconds of the last `iter` call.
    last_median_ns: f64,
}

impl Bencher {
    /// Measure `f`, storing the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if test_mode() {
            // Smoke test: one execution, no measurement loop.
            let start = Instant::now();
            black_box(f());
            self.last_median_ns = start.elapsed().as_nanos() as f64;
            return;
        }
        // Warm-up and calibration: find how many iterations fit ~5 ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_sample =
            ((Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000)) as u32;

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            sample_ns.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        self.last_median_ns = sample_ns[sample_ns.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Record the group throughput (echoed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("group {}: throughput {:?}", self.name, t);
        self
    }

    fn run<I: ?Sized, F>(&mut self, label: &str, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            last_median_ns: f64::NAN,
        };
        f(&mut b, input);
        println!(
            "bench {}/{}: median {:.1} ns/iter",
            self.name, label, b.last_median_ns
        );
    }

    /// Benchmark a closure over one input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label.clone();
        self.run(&label, input, f);
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        self.run(&label, &(), |b, _| f(b));
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }
}

/// Declare a group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` running each group. Honours `--test` (smoke mode: one
/// execution per benchmark, no measurement loop) and ignores other CLI
/// args such as `--bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::set_test_mode(std::env::args().any(|a| a == "--test"));
            $($group();)+
        }
    };
}
