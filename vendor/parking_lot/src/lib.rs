//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the subset of the parking_lot API the workspace uses —
//! `Mutex::lock`, `RwLock::read` / `RwLock::write` returning guards
//! directly (no poisoning in the API). A poisoned std lock is recovered
//! by taking the inner guard, matching parking_lot's poison-free
//! semantics closely enough for this codebase.

use std::sync;

/// RAII mutex guard (re-exported std type).
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// RAII shared read guard (re-exported std type).
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII exclusive write guard (re-exported std type).
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion primitive with parking_lot's poison-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's poison-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
