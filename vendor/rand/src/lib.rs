//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over
//! integer/float ranges, and `seq::SliceRandom::shuffle` — on top of a
//! splitmix64 core. Streams are deterministic per seed (the workspace's
//! reproducibility contract) but do **not** match upstream rand's
//! bit-streams; all workspace tests assert determinism, not specific
//! values, so this is sufficient.

use std::ops::{Range, RangeInclusive};

/// Deterministic seeding, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Create an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can produce a `T` uniformly from a range (argument to
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing random-number trait (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (must lie in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

/// Map 64 random bits to a uniform f64 in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % width;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // Dividing by 2^53 - 1 makes the top value reachable.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) as f32 * (self.end - self.start)
    }
}

/// Concrete RNGs.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                // Avoid the all-zero fixed point and decorrelate small seeds.
                state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x51_7c_c1_b7_27_22_0a_95,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Vigna): passes BigCrush on 64-bit outputs.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0u32..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
