//! No-op `Serialize` / `Deserialize` derives.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate stands in for `serde_derive`. The workspace only relies on the
//! derives *existing* (no code path performs real serialization), so the
//! macros expand to nothing. Swap in the real serde to get wire formats.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
