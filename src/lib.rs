//! # mirabel
//!
//! A Rust implementation of the MIRABEL smart-grid Energy Data Management
//! System (Boehm et al., *Data Management in the MIRABEL Smart Grid
//! System*, EDBT/ICDT Workshops 2012).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Module | Crate | Paper section |
//! |---|---|---|
//! | [`core`] | `mirabel-core` | §2 flex-offer model |
//! | [`timeseries`] | `mirabel-timeseries` | §5 substrate + data substitutes |
//! | [`forecast`] | `mirabel-forecast` | §5 forecasting |
//! | [`aggregate`] | `mirabel-aggregate` | §4 aggregation |
//! | [`schedule`] | `mirabel-schedule` | §6 scheduling |
//! | [`negotiate`] | `mirabel-negotiate` | §7 negotiation |
//! | [`edms`] | `mirabel-edms` | §2/§3 node architecture & hierarchy |
//!
//! ## Quickstart
//!
//! ```
//! use mirabel::aggregate::{AggregationParams, AggregationPipeline};
//! use mirabel::core::FlexOfferGenerator;
//!
//! // 1. A population of micro flex-offers…
//! let offers: Vec<_> = FlexOfferGenerator::with_seed(42).take(500).collect();
//! // 2. …aggregated into a handful of macro offers…
//! let pipeline = AggregationPipeline::from_scratch(
//!     AggregationParams::p3(16, 16),
//!     None,
//!     offers,
//! );
//! assert!(pipeline.report().compression_ratio() > 1.0);
//! ```
//!
//! See `examples/` for the paper's EV-charging scenario, a full BRP
//! balancing day, and the three-level hierarchy simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mirabel_aggregate as aggregate;
pub use mirabel_core as core;
pub use mirabel_edms as edms;
pub use mirabel_forecast as forecast;
pub use mirabel_negotiate as negotiate;
pub use mirabel_schedule as schedule;
pub use mirabel_timeseries as timeseries;
